// Deterministic adversary model (DESIGN.md Sect. 15) — the malicious
// counterpart of the benign FaultPlan in fault.hpp.
//
// An AttackPlan declares which responders are compromised and what each one
// does; an AttackInjector turns the plan into concrete per-frame
// manipulations at the same well-defined hook points the fault injector
// uses: frame transmission (carrier overshoot, forged pulse shape), per-link
// delivery (ghost CIR taps), and reply arming (biased TX timestamps).
//
// The three attack kinds map to published UWB attack classes:
//   kClockSkew   — attacker-controlled crystal drift/overshoot ("Time for
//                  Change: How Clocks Break UWB Secure Ranging"): the
//                  compromised responder's carrier overshoots its timestamp
//                  clock (spoofing the initiator's CFO estimate and thereby
//                  Eq. 2's drift correction) and/or its reported RESP TX
//                  timestamp is biased to inflate the reply interval —
//                  both shrink the measured distance.
//   kGhostPeak   — Cicada-style early-pulse injection: adversarial taps are
//                  appended to the victim's CIR ahead of the legitimate
//                  first path, so CIR-based first-path estimates (paper
//                  Sect. IV) move closer without touching any timestamp.
//   kShapeReplay — replayed/forged responder pulse shapes (TC_PGDELAY): the
//                  attacker transmits another shape register to defeat
//                  pulse-shape responder identification (paper Sect. V) and
//                  the XcorrIdentifier baseline.
//
// Determinism contract (identical to FaultInjector): every decision is
// drawn from per-attacker streams derived with derive_seed — keyed by
// (attacker, frame chain[, receiver]) so culled and unculled runs, and any
// Monte-Carlo worker-thread count, produce bit-identical attack sequences.
// The injector owns its streams outright and never draws from (or reorders
// draws of) the simulation RNGs: a plan whose every strength is zero is
// *byte-identical* to running without the subsystem.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/types.hpp"

namespace uwb::fault {

enum class AttackKind : std::uint8_t {
  kClockSkew,    ///< carrier overshoot / biased reply timestamps
  kGhostPeak,    ///< early adversarial CIR taps
  kShapeReplay,  ///< forged TC_PGDELAY pulse shape
};

const char* to_string(AttackKind kind);

/// What one compromised responder does. Strengths default to zero / inert;
/// a spec only participates when active().
struct AttackSpec {
  /// Node id of the compromised responder.
  int attacker_id = 0;
  AttackKind kind = AttackKind::kClockSkew;
  /// Per-frame probability the attacker manipulates a given frame
  /// (kGhostPeak / kShapeReplay; kClockSkew is continuous by nature).
  double probability = 1.0;

  // --- kClockSkew -----------------------------------------------------------
  /// Carrier overshoot [ppm] added to the attacker's true crystal drift as
  /// seen by receivers' CFO estimators. Negative values make the attacker
  /// look slower than its timestamp clock, shrinking the drift-corrected
  /// SS-TWR distance by ~c * |spoof| * 1e-6 * t_reply / 2.
  double cfo_spoof_ppm = 0.0;
  /// Overshoot ramp [ppm per round] on top of cfo_spoof_ppm — the gradual
  /// drift attack that stays under a static plausibility bound until it
  /// doesn't.
  double cfo_ramp_ppm_per_round = 0.0;
  /// Bias [s] added to the RESP TX timestamp the attacker reports in its
  /// payload (the actual transmission is unchanged). Positive bias inflates
  /// the reply interval and shrinks the measured distance by c * bias / 2.
  double reply_bias_s = 0.0;

  // --- kGhostPeak -----------------------------------------------------------
  /// How far ahead of the legitimate first path the ghost tap lands [s].
  /// Physically capped at the attacker's one-way propagation delay: a CIR
  /// tap cannot precede the frame's transmission instant, so larger
  /// advances clamp to channel delay 0 (the injector enforces this). The
  /// attacker can thus at best pretend to be colocated with the receiver.
  double ghost_advance_s = 0.0;
  /// Ghost tap amplitude relative to the legitimate first-path amplitude.
  double ghost_rel_amplitude = 1.0;
  /// Number of ghost taps per manipulated frame (a pulse train), spaced
  /// one ghost_spacing_s apart walking back from ghost_advance_s.
  int ghost_count = 1;
  double ghost_spacing_s = 1e-9;

  // --- kShapeReplay ---------------------------------------------------------
  /// TC_PGDELAY register transmitted instead of the assigned one
  /// (-1 = none). Typically another responder's register, or one outside
  /// the session's bank.
  int forged_shape_register = -1;

  /// True when the spec can manipulate anything.
  bool active() const;
  /// Throws PreconditionError on out-of-range values.
  void validate() const;
};

/// Declarative adversary description. Default-constructed (and any plan
/// whose specs are all inert) injects nothing and perturbs nothing.
struct AttackPlan {
  /// Master switch; false compiles the whole subsystem down to a null
  /// pointer check per hook.
  bool enabled = false;
  std::vector<AttackSpec> specs;
  /// Base seed of the injector's RNG streams. 0 = the owning session
  /// derives one from its scenario seed.
  std::uint64_t seed = 0;

  /// True when enabled and at least one spec is active.
  bool active() const;
  /// Throws PreconditionError on invalid specs or duplicate attacker ids.
  void validate() const;
  /// The spec for one attacker (nullptr when the node is honest).
  const AttackSpec* spec_for(int attacker_id) const;
};

/// Tally of injected manipulations, by attack kind. Deterministic under the
/// same contract as the decisions themselves.
struct AttackCounters {
  std::uint64_t cfo_spoofed_frames = 0;
  std::uint64_t biased_replies = 0;
  std::uint64_t ghost_taps = 0;
  std::uint64_t forged_shapes = 0;

  std::uint64_t total() const {
    return cfo_spoofed_frames + biased_replies + ghost_taps + forged_shapes;
  }
};

/// One adversarial CIR tap, in the Medium's tap coordinates (absolute
/// TX->RX propagation delay). Kept free of sim-layer types so uwb_fault
/// stays below uwb_sim in the dependency order.
struct GhostTap {
  double delay_s = 0.0;
  Complex amplitude;
};

/// Turns an AttackPlan into per-frame manipulations. One injector serves
/// one scenario; all methods are single-threaded like the simulation.
class AttackInjector {
 public:
  /// `fallback_seed` seeds the RNG streams when plan.seed == 0 (sessions
  /// pass derive_seed(scenario_seed, kAttackSeedStream)).
  AttackInjector(AttackPlan plan, std::uint64_t fallback_seed);

  /// False when the plan can never manipulate anything; every hook is a
  /// no-op (and draws no randomness) in that case.
  bool active() const { return active_; }

  /// Advance per-round state (the overshoot ramp). Sessions call this at
  /// the start of every protocol attempt, next to FaultInjector::begin_round.
  void begin_round();

  /// Carrier overshoot [ppm] the attacker's radio applies on top of its
  /// crystal's true drift for the frame with causal chain id `chain`
  /// (sim::Medium::transmit hook). 0 for honest transmitters.
  double cfo_spoof_ppm(int tx_node_id, std::uint64_t chain);

  /// Forged TC_PGDELAY register for this frame, or -1 to transmit the
  /// assigned shape (sim::Medium::transmit hook).
  int forged_shape_register(int tx_node_id, std::uint64_t chain);

  /// Bias [s] the responder adds to the TX timestamp it reports in its
  /// RESP payload (ranging session hook). 0 for honest responders.
  double reply_timestamp_bias_s(int responder_id);

  /// Adversarial taps to append to the frame `chain` from `tx_node_id` as
  /// received by `rx_node_id`, given the legitimate first detectable path
  /// (sim::Medium::deliver hook). Appends to `out` (not cleared). The
  /// fire/skip decision is drawn per frame (all receivers agree — the ghost
  /// pulse is on the air); phases are drawn per (frame, receiver). Both
  /// streams are keyed by the frame chain, so culling and delivery order
  /// cannot perturb them.
  void ghost_taps(int tx_node_id, int rx_node_id, std::uint64_t chain,
                  double first_path_delay_s, double first_path_amplitude,
                  std::vector<GhostTap>& out);

  const AttackPlan& plan() const { return plan_; }
  const AttackCounters& counters() const { return counters_; }

 private:
  /// Per-attacker stream base: derive_seed(stream_base_, attacker_id).
  std::uint64_t attacker_stream(int attacker_id) const;
  /// The active spec for a node, or nullptr (honest node fast path).
  const AttackSpec* spec(int node_id) const;
  /// Per-frame manipulation decision for probabilistic kinds.
  bool frame_selected(const AttackSpec& s, std::uint64_t chain) const;

  AttackPlan plan_;
  bool active_ = false;
  std::uint64_t stream_base_ = 0;
  std::uint64_t round_ = 0;
  /// attacker id -> index into plan_.specs (sorted map: deterministic).
  std::map<int, std::size_t> spec_index_;
  AttackCounters counters_;
};

}  // namespace uwb::fault
