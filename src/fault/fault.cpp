#include "fault/fault.hpp"

#include <algorithm>
#include <cmath>

#include "common/expects.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/obs.hpp"

namespace uwb::fault {

namespace {
bool is_prob(double p) { return p >= 0.0 && p <= 1.0; }
}  // namespace

bool FaultPlan::active() const {
  return enabled &&
         (preamble_miss_prob > 0.0 || crc_error_prob > 0.0 ||
          late_tx_abort_prob > 0.0 || dropout_prob > 0.0 ||
          reply_jitter_sigma_s > 0.0 || drift_step_prob > 0.0 ||
          epoch_jump_prob > 0.0);
}

void FaultPlan::validate() const {
  UWB_EXPECTS(is_prob(preamble_miss_prob));
  UWB_EXPECTS(is_prob(crc_error_prob));
  UWB_EXPECTS(is_prob(late_tx_abort_prob));
  UWB_EXPECTS(is_prob(dropout_prob));
  UWB_EXPECTS(is_prob(drift_step_prob));
  UWB_EXPECTS(is_prob(epoch_jump_prob));
  UWB_EXPECTS(preamble_snr_exponent >= 0.0);
  UWB_EXPECTS(preamble_snr_ref_amp > 0.0);
  UWB_EXPECTS(reply_jitter_sigma_s >= 0.0);
  UWB_EXPECTS(dropout_rounds_min >= 1);
  UWB_EXPECTS(dropout_rounds_max >= dropout_rounds_min);
  UWB_EXPECTS(drift_step_sigma_ppm >= 0.0);
  UWB_EXPECTS(epoch_jump_max_s >= 0.0);
}

FaultInjector::FaultInjector(FaultPlan plan, std::uint64_t fallback_seed)
    : plan_(plan) {
  plan_.validate();
  active_ = plan_.active();
  stream_base_ = plan_.seed != 0 ? plan_.seed : fallback_seed;
}

FaultInjector::NodeState& FaultInjector::state(int node_id) {
  auto it = states_.find(node_id);
  if (it == states_.end()) {
    const std::uint64_t seed = derive_seed(
        stream_base_,
        static_cast<std::uint64_t>(static_cast<std::int64_t>(node_id)));
    it = states_.emplace(node_id, NodeState(seed)).first;
  }
  return it->second;
}

void FaultInjector::begin_round() {
  if (!active_) return;
  ++round_;
  for (auto& [id, st] : states_) {
    (void)id;
    if (st.mute_rounds_left > 0) --st.mute_rounds_left;
  }
}

bool FaultInjector::miss_preamble(int rx_node_id, double first_path_amplitude,
                                  std::uint64_t chain) {
  if (!active_ || plan_.preamble_miss_prob <= 0.0) return false;
  double p = plan_.preamble_miss_prob;
  if (plan_.preamble_snr_exponent > 0.0 && first_path_amplitude > 0.0) {
    p *= std::pow(plan_.preamble_snr_ref_amp / first_path_amplitude,
                  plan_.preamble_snr_exponent);
    p = std::clamp(p, 0.0, 1.0);
  }
  if (!state(rx_node_id).rng.chance(p)) return false;
  ++counters_.preamble_miss;
  UWB_OBS_COUNT("fault_injected_preamble_miss", 1);
  UWB_FR_EVENT(.kind = obs::FrKind::kFault, .name = "preamble_miss",
               .chain = chain, .node = rx_node_id,
               .v0 = {"first_path_amp", first_path_amplitude},
               .v1 = {"miss_prob", p});
  return true;
}

bool FaultInjector::corrupt_crc(int rx_node_id, std::uint64_t chain) {
  if (!active_ || plan_.crc_error_prob <= 0.0) return false;
  if (!state(rx_node_id).rng.chance(plan_.crc_error_prob)) return false;
  ++counters_.crc_error;
  UWB_OBS_COUNT("fault_injected_crc_error", 1);
  UWB_FR_EVENT(.kind = obs::FrKind::kFault, .name = "crc_error",
               .chain = chain, .node = rx_node_id);
  return true;
}

bool FaultInjector::abort_delayed_tx(int tx_node_id) {
  if (!active_ || plan_.late_tx_abort_prob <= 0.0) return false;
  if (!state(tx_node_id).rng.chance(plan_.late_tx_abort_prob)) return false;
  ++counters_.late_tx_abort;
  UWB_OBS_COUNT("fault_injected_late_tx_abort", 1);
  // Chain comes from the recorder context: the session arms the delayed TX
  // inside the chain scope of the frame being answered.
  UWB_FR_EVENT(.kind = obs::FrKind::kFault, .name = "late_tx_abort",
               .node = tx_node_id);
  return true;
}

bool FaultInjector::responder_muted(int node_id) {
  if (!active_ || plan_.dropout_prob <= 0.0) return false;
  NodeState& st = state(node_id);
  if (st.mute_drawn_round != round_) {
    st.mute_drawn_round = round_;
    if (st.mute_rounds_left == 0 && st.rng.chance(plan_.dropout_prob)) {
      st.mute_rounds_left = static_cast<int>(st.rng.uniform_int(
          plan_.dropout_rounds_min, plan_.dropout_rounds_max));
    }
    if (st.mute_rounds_left > 0) {
      ++counters_.dropout_rounds;
      UWB_OBS_COUNT("fault_injected_dropout_round", 1);
      UWB_FR_EVENT(.kind = obs::FrKind::kFault, .name = "dropout_mute",
                   .node = node_id,
                   .v0 = {"rounds_left",
                          static_cast<double>(st.mute_rounds_left)});
    }
  }
  return st.mute_rounds_left > 0;
}

double FaultInjector::reply_jitter_s(int node_id) {
  if (!active_ || plan_.reply_jitter_sigma_s <= 0.0) return 0.0;
  const double jitter = state(node_id).rng.normal(0.0, plan_.reply_jitter_sigma_s);
  if (jitter != 0.0) {
    UWB_FR_EVENT(.kind = obs::FrKind::kFault, .name = "reply_jitter",
                 .node = node_id, .v0 = {"jitter_s", jitter});
  }
  return jitter;
}

FaultInjector::ClockGlitch FaultInjector::clock_glitch(int node_id) {
  ClockGlitch g;
  if (!active_) return g;
  if (plan_.drift_step_prob > 0.0) {
    NodeState& st = state(node_id);
    if (st.rng.chance(plan_.drift_step_prob)) {
      g.drift_step_ppm = st.rng.normal(0.0, plan_.drift_step_sigma_ppm);
      ++counters_.clock_drift_step;
      UWB_OBS_COUNT("fault_injected_clock_drift_step", 1);
      UWB_FR_EVENT(.kind = obs::FrKind::kFault, .name = "clock_drift_step",
                   .node = node_id, .v0 = {"step_ppm", g.drift_step_ppm});
    }
  }
  if (plan_.epoch_jump_prob > 0.0) {
    NodeState& st = state(node_id);
    if (st.rng.chance(plan_.epoch_jump_prob)) {
      g.epoch_jump_s =
          st.rng.uniform(-plan_.epoch_jump_max_s, plan_.epoch_jump_max_s);
      ++counters_.clock_epoch_jump;
      UWB_OBS_COUNT("fault_injected_clock_epoch_jump", 1);
      UWB_FR_EVENT(.kind = obs::FrKind::kFault, .name = "clock_epoch_jump",
                   .node = node_id, .v0 = {"jump_s", g.epoch_jump_s});
    }
  }
  return g;
}

}  // namespace uwb::fault
