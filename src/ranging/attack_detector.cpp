#include "ranging/attack_detector.hpp"

#include <algorithm>
#include <cmath>

#include "common/expects.hpp"
#include "dsp/signal.hpp"
#include "dw1000/pulse.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/obs.hpp"
#include "ranging/xcorr_id.hpp"

namespace uwb::ranging {

namespace {

/// Peak normalised correlation of two unit-energy snippets over a small lag
/// search (same +-1/4-window search XcorrIdentifier uses, absorbing the
/// delayed-TX truncation shift).
double peak_correlation(const CVec& probe, const CVec& ref) {
  const auto np = static_cast<std::ptrdiff_t>(probe.size());
  const auto nr = static_cast<std::ptrdiff_t>(ref.size());
  const std::ptrdiff_t max_lag = np / 4;
  double best = 0.0;
  for (std::ptrdiff_t lag = -max_lag; lag <= max_lag; ++lag) {
    Complex acc{};
    for (std::ptrdiff_t i = std::max<std::ptrdiff_t>(0, lag);
         i < std::min(np, np + lag); ++i) {
      const std::ptrdiff_t j = i - lag;
      if (j < 0 || j >= nr) continue;
      acc += probe[static_cast<std::size_t>(i)] *
             std::conj(ref[static_cast<std::size_t>(j)]);
    }
    best = std::max(best, std::abs(acc));
  }
  return std::min(best, 1.0);
}

/// Unit-energy window of the register's pulse template around its centre
/// sample, sized to match an extract_snippet() probe of half-width
/// `window_s`.
CVec template_snippet(std::uint8_t reg, double ts_s, double window_s) {
  const CVec& tmpl = dw::cached_pulse_template(reg, ts_s);
  const auto n = static_cast<std::ptrdiff_t>(tmpl.size());
  const auto centre =
      static_cast<std::ptrdiff_t>(dw::template_centre_index(reg, ts_s));
  const auto half = static_cast<std::ptrdiff_t>(std::ceil(window_s / ts_s));
  CVec snippet;
  for (std::ptrdiff_t i = centre - half; i <= centre + half; ++i)
    snippet.push_back(i >= 0 && i < n ? tmpl[static_cast<std::size_t>(i)]
                                      : Complex{});
  return dsp::normalize_energy(snippet);
}

}  // namespace

const char* to_string(AttackCheck check) {
  switch (check) {
    case AttackCheck::kCfoImplausible: return "cfo_implausible";
    case AttackCheck::kReplySchedule: return "reply_schedule";
    case AttackCheck::kGhostTail: return "ghost_tail";
    case AttackCheck::kShapeMargin: return "shape_margin";
    case AttackCheck::kUnknownId: return "unknown_id";
  }
  return "unknown";
}

void AttackDetectorConfig::validate() const {
  UWB_EXPECTS(cfo_max_ppm > 0.0);
  UWB_EXPECTS(reply_tolerance_s > 0.0);
  UWB_EXPECTS(tail_gap_s >= 0.0);
  UWB_EXPECTS(tail_window_s > tail_gap_s);
  UWB_EXPECTS(min_tail_ratio >= 0.0);
  UWB_EXPECTS(strong_peak_fraction >= 0.0 && strong_peak_fraction <= 1.0);
  UWB_EXPECTS(min_shape_margin >= 0.0 && min_shape_margin <= 1.0);
  UWB_EXPECTS(shape_window_s > 0.0);
  UWB_EXPECTS(unknown_min_rel_amplitude >= 0.0 &&
              unknown_min_rel_amplitude <= 1.0);
}

AttackDetector::AttackDetector(AttackDetectorConfig config)
    : config_(config) {
  config_.validate();
}

double AttackDetector::tail_energy_ratio(const CVec& cir_taps, double ts_s,
                                         double tau_s, double gap_s,
                                         double window_s) {
  UWB_EXPECTS(ts_s > 0.0);
  UWB_EXPECTS(window_s > gap_s);
  if (cir_taps.empty()) return 0.0;
  const auto n = static_cast<std::ptrdiff_t>(cir_taps.size());
  const auto peak = static_cast<std::ptrdiff_t>(std::llround(tau_s / ts_s));
  const double peak_energy =
      peak >= 0 && peak < n
          ? std::norm(cir_taps[static_cast<std::size_t>(peak)])
          : 0.0;
  if (peak_energy <= 0.0) return 0.0;
  const auto lo = peak + static_cast<std::ptrdiff_t>(std::ceil(gap_s / ts_s));
  const auto hi =
      peak + static_cast<std::ptrdiff_t>(std::floor(window_s / ts_s));
  double tail = 0.0;
  for (std::ptrdiff_t i = std::max<std::ptrdiff_t>(peak + 1, lo);
       i <= hi && i < n; ++i)
    tail += std::norm(cir_taps[static_cast<std::size_t>(i)]);
  return tail / peak_energy;
}

double AttackDetector::shape_margin(
    const CVec& cir_taps, double ts_s, double tau_s, double window_s,
    const std::vector<std::uint8_t>& shape_registers) {
  if (shape_registers.size() < 2) return 1.0;
  if (cir_taps.empty()) return 1.0;
  const CVec probe =
      XcorrIdentifier::extract_snippet(cir_taps, ts_s, tau_s, window_s);
  double best = 0.0;
  double second = 0.0;
  for (const std::uint8_t reg : shape_registers) {
    const double score =
        peak_correlation(probe, template_snippet(reg, ts_s, window_s));
    if (score > best) {
      second = best;
      best = score;
    } else if (score > second) {
      second = score;
    }
  }
  return best - second;
}

std::vector<AttackVerdict> AttackDetector::detect(
    const RoundView& round) const {
  std::vector<AttackVerdict> verdicts;
  if (!config_.enabled) return verdicts;
  UWB_EXPECTS(round.cir != nullptr && round.detections != nullptr &&
              round.estimates != nullptr && round.ranging != nullptr &&
              round.configured_ids != nullptr);
  UWB_EXPECTS(round.estimates->size() == round.detections->size());

  const auto indict = [&verdicts](int responder_id, AttackCheck check,
                                  double metric, double threshold,
                                  double tau_s) {
    verdicts.push_back({responder_id, check, metric, threshold, tau_s});
    UWB_OBS_COUNT("attack_verdicts", 1);
    UWB_FR_EVENT(.kind = obs::FrKind::kVerdict, .name = "verdict",
                 .node = responder_id, .detail = to_string(check),
                 .v0 = {"metric", metric}, .v1 = {"threshold", threshold},
                 .v2 = {"tau_s", tau_s});
  };

  // Round-level checks indict the sync responder: its CFO and reported
  // reply interval are the only ones the SS-TWR math consumes.
  if (std::abs(round.cfo_ppm) > config_.cfo_max_ppm)
    indict(round.sync_responder_id, AttackCheck::kCfoImplausible,
           round.cfo_ppm, config_.cfo_max_ppm, 0.0);
  const double reply_residual = round.reply_s - round.programmed_reply_s;
  if (std::abs(reply_residual) > config_.reply_tolerance_s)
    indict(round.sync_responder_id, AttackCheck::kReplySchedule,
           reply_residual, config_.reply_tolerance_s, 0.0);

  // Per-response checks over the round's CIR. Amplitude reference: the
  // round's strongest detected response.
  double strongest = 0.0;
  for (const DetectedResponse& d : *round.detections)
    strongest = std::max(strongest, std::abs(d.amplitude));
  if (strongest <= 0.0) return verdicts;

  const CVec& taps = round.cir->taps;
  const double ts_s = round.cir->ts_s;
  for (std::size_t i = 0; i < round.detections->size(); ++i) {
    const DetectedResponse& det = (*round.detections)[i];
    const ResponderEstimate& est = (*round.estimates)[i];
    const double rel_amp = std::abs(det.amplitude) / strongest;

    if (rel_amp >= config_.strong_peak_fraction) {
      const double tail = tail_energy_ratio(taps, ts_s, det.tau_s,
                                            config_.tail_gap_s,
                                            config_.tail_window_s);
      if (tail < config_.min_tail_ratio)
        indict(est.responder_id, AttackCheck::kGhostTail, tail,
               config_.min_tail_ratio, det.tau_s);

      if (config_.min_shape_margin > 0.0) {
        const double margin =
            shape_margin(taps, ts_s, det.tau_s, config_.shape_window_s,
                         round.ranging->shape_registers);
        if (margin < config_.min_shape_margin)
          indict(est.responder_id, AttackCheck::kShapeMargin, margin,
                 config_.min_shape_margin, det.tau_s);
      }
    }

    if (est.responder_id >= 0 &&
        round.configured_ids->count(est.responder_id) == 0 &&
        rel_amp >= config_.unknown_min_rel_amplitude)
      indict(est.responder_id, AttackCheck::kUnknownId,
             static_cast<double>(est.responder_id), rel_amp, det.tau_s);
  }
  return verdicts;
}

}  // namespace uwb::ranging
