#include "ranging/search_subtract.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <map>
#include <utility>
#include <vector>

#include "common/expects.hpp"
#include "dsp/fft.hpp"
#include "dsp/matched_filter.hpp"
#include "dsp/peaks.hpp"
#include "dsp/resample.hpp"
#include "dsp/signal.hpp"
#include "dw1000/pulse.hpp"

namespace uwb::ranging {

namespace detail {
void validate_detector_config(const DetectorConfig& cfg);

CVec upsample_padded(const CVec& cir_taps, int factor) {
  // Zero-pad to a power of two before FFT interpolation: the 1016-tap CIR
  // then takes the radix-2 path throughout instead of Bluestein, which is
  // several times faster in the Monte-Carlo harnesses. The padding splices
  // zeros at the window end only, leaving interior peaks untouched.
  CVec padded(dsp::next_pow2(cir_taps.size()), Complex{});
  std::copy(cir_taps.begin(), cir_taps.end(), padded.begin());
  return dsp::upsample_fft(padded, factor);
}

}  // namespace detail

struct SearchSubtractDetector::TemplateBank {
  double ts_up = 0.0;
  struct Entry {
    dsp::MatchedFilter filter;
    CVec unit_template;
    double raw_norm = 0.0;         // ||s|| on the upsampled grid
    std::size_t centre_index = 0;  // peak sample within the template
    std::size_t length = 0;
    std::uint8_t reg = 0x93;
  };
  std::vector<Entry> entries;
};

SearchSubtractDetector::SearchSubtractDetector(DetectorConfig config)
    : config_(std::move(config)) {
  detail::validate_detector_config(config_);
}

SearchSubtractDetector::~SearchSubtractDetector() = default;
SearchSubtractDetector::SearchSubtractDetector(SearchSubtractDetector&&) noexcept =
    default;
SearchSubtractDetector& SearchSubtractDetector::operator=(
    SearchSubtractDetector&&) noexcept = default;

namespace {

// Thread-local bank cache: detectors constructed per Monte-Carlo trial with
// identical configuration share one bank (templates and matched-filter
// spectra) instead of rebuilding it every trial. Keyed by everything the
// bank depends on: the shape registers and the upsampled sample period.
struct BankCache {
  struct Key {
    std::vector<std::uint8_t> registers;
    std::uint64_t ts_up_bits = 0;
    bool operator<(const Key& other) const {
      if (ts_up_bits != other.ts_up_bits) return ts_up_bits < other.ts_up_bits;
      return registers < other.registers;
    }
  };
  std::map<Key, std::shared_ptr<const SearchSubtractDetector::TemplateBank>>
      entries;
  std::size_t hits = 0;
  std::size_t misses = 0;
};

BankCache& bank_cache() {
  thread_local BankCache cache;
  return cache;
}

std::uint64_t double_bits(double x) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(x));
  std::memcpy(&bits, &x, sizeof(bits));
  return bits;
}

}  // namespace

const SearchSubtractDetector::TemplateBank& SearchSubtractDetector::bank_for(
    double ts_s) const {
  UWB_EXPECTS(ts_s > 0.0);
  const double ts_up = ts_s / config_.upsample_factor;
  if (bank_ && std::abs(bank_->ts_up - ts_up) < 1e-18) return *bank_;

  BankCache& cache = bank_cache();
  const BankCache::Key key{config_.shape_registers, double_bits(ts_up)};
  if (const auto it = cache.entries.find(key); it != cache.entries.end()) {
    ++cache.hits;
    bank_ = it->second;
    return *bank_;
  }
  ++cache.misses;

  auto bank = std::make_shared<TemplateBank>();
  bank->ts_up = ts_up;
  for (std::uint8_t reg : config_.shape_registers) {
    CVec raw = dw::cached_pulse_template(reg, ts_up);
    const double norm = std::sqrt(dsp::energy(raw));
    UWB_ENSURES(norm > 0.0);
    TemplateBank::Entry entry{dsp::MatchedFilter(std::move(raw)), {}, norm,
                              dw::template_centre_index(reg, ts_up),
                              0, reg};
    entry.unit_template = entry.filter.unit_template();
    entry.length = entry.unit_template.size();
    bank->entries.push_back(std::move(entry));
  }
  bank_ = bank;
  cache.entries.emplace(key, std::move(bank));
  return *bank_;
}

SearchSubtractDetector::BankCacheStats
SearchSubtractDetector::bank_cache_stats() {
  const BankCache& cache = bank_cache();
  return {cache.hits, cache.misses};
}

void SearchSubtractDetector::clear_bank_cache() {
  bank_cache().entries.clear();
}

CVec SearchSubtractDetector::matched_filter_output(const CVec& cir_taps,
                                                   double ts_s,
                                                   int shape_index) const {
  UWB_EXPECTS(shape_index >= 0 &&
              shape_index < static_cast<int>(config_.shape_registers.size()));
  const TemplateBank& bank = bank_for(ts_s);
  const CVec up = dsp::upsample_fft(cir_taps, config_.upsample_factor);
  return bank.entries[static_cast<std::size_t>(shape_index)].filter.apply(up);
}

std::vector<DetectedResponse> SearchSubtractDetector::detect(
    const CVec& cir_taps, double ts_s, int max_responses) const {
  return detect_impl(cir_taps, ts_s, max_responses, nullptr);
}

SearchSubtractDetector::DetectionTrace SearchSubtractDetector::detect_with_trace(
    const CVec& cir_taps, double ts_s, int max_responses) const {
  DetectionTrace trace;
  trace.ts_up = ts_s / config_.upsample_factor;
  trace.responses = detect_impl(cir_taps, ts_s, max_responses, &trace);
  return trace;
}

std::vector<DetectedResponse> SearchSubtractDetector::detect_impl(
    const CVec& cir_taps, double ts_s, int max_responses,
    DetectionTrace* trace) const {
  UWB_EXPECTS(!cir_taps.empty());
  UWB_EXPECTS(max_responses >= 1);
  const TemplateBank& bank = bank_for(ts_s);
  const double ts_up = bank.ts_up;

  CVec residual = detail::upsample_padded(cir_taps, config_.upsample_factor);

  std::vector<DetectedResponse> found;
  double strongest = 0.0;
  for (int k = 0; k < max_responses; ++k) {
    // Step 2/3: matched filter every template, take the global maximum.
    int best_shape = -1;
    std::size_t best_idx = 0;
    CVec best_y;
    double best_mag = -1.0;
    for (std::size_t i = 0; i < bank.entries.size(); ++i) {
      CVec y = bank.entries[i].filter.apply(residual);
      const std::size_t idx = dsp::argmax_abs(y);
      const double mag = std::abs(y[idx]);
      if (mag > best_mag) {
        best_mag = mag;
        best_idx = idx;
        best_y = std::move(y);
        best_shape = static_cast<int>(i);
      }
    }
    UWB_ENSURES(best_shape >= 0);
    if (trace) trace->mf_outputs.push_back(best_y);

    // Stop at the noise floor of the *filter output* (upsampling correlates
    // the accumulator noise, so the matched-filter noise gain must be
    // measured, not assumed white); never stop by absolute power bounds.
    const double noise = dsp::noise_sigma_estimate(best_y);
    if (best_mag < config_.noise_threshold_factor * noise) break;
    if (strongest > 0.0 &&
        best_mag < config_.relative_stop_fraction * strongest)
      break;
    strongest = std::max(strongest, best_mag);

    const auto& entry = bank.entries[static_cast<std::size_t>(best_shape)];

    // Sub-sample refinement: parabolic interpolation of |y| around the peak
    // gives the fractional pulse position; subtracting the fractionally
    // shifted template keeps the residual below the noise floor instead of
    // leaving quantisation sidelobes.
    double frac = 0.0;
    double mag_refined = best_mag;
    if (best_idx > 0 && best_idx + 1 < best_y.size()) {
      const double ym = std::abs(best_y[best_idx - 1]);
      const double y0 = best_mag;
      const double yp = std::abs(best_y[best_idx + 1]);
      const double denom = ym - 2.0 * y0 + yp;
      if (denom < 0.0) {
        frac = std::clamp(0.5 * (ym - yp) / denom, -0.5, 0.5);
        mag_refined = y0 - 0.25 * (ym - yp) * frac;
      }
    }
    const Complex amp_at_peak =
        best_y[best_idx] * (mag_refined / best_mag) / entry.raw_norm;

    DetectedResponse resp;
    resp.index_upsampled = static_cast<double>(best_idx) + frac +
                           static_cast<double>(entry.centre_index);
    resp.tau_s = resp.index_upsampled * ts_up;
    // Step 4: amplitude from the filter output (template has unit energy, so
    // the physical peak amplitude is y / ||s||).
    resp.amplitude = amp_at_peak;
    resp.shape_index =
        config_.shape_registers.size() > 1 ? best_shape : -1;
    found.push_back(resp);

    // Step 5: subtract the estimated response, evaluating the analytic pulse
    // at the fractional delay.
    const auto n0 = static_cast<std::ptrdiff_t>(best_idx);
    const auto len = static_cast<std::ptrdiff_t>(entry.length);
    const auto res_n = static_cast<std::ptrdiff_t>(residual.size());
    const auto centre = static_cast<double>(entry.centre_index);
    for (std::ptrdiff_t m = std::max<std::ptrdiff_t>(0, -n0);
         m < std::min(len + 1, res_n - n0); ++m) {
      const double t = (static_cast<double>(m) - centre - frac) * ts_up;
      residual[static_cast<std::size_t>(n0 + m)] -=
          amp_at_peak * dw::pulse_value(entry.reg, t);
    }
  }

  // Step 7: ascending path delay, closest responder first.
  std::sort(found.begin(), found.end(),
            [](const DetectedResponse& a, const DetectedResponse& b) {
              return a.tau_s < b.tau_s;
            });
  return found;
}

}  // namespace uwb::ranging
