#include "ranging/search_subtract.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/expects.hpp"
#include "common/hash.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "dsp/fft.hpp"
#include "dsp/matched_filter.hpp"
#include "dsp/peaks.hpp"
#include "dsp/resample.hpp"
#include "dsp/signal.hpp"
#include "dw1000/pulse.hpp"
#include "simd/simd.hpp"

namespace uwb::ranging {

namespace detail {
void validate_detector_config(const DetectorConfig& cfg);

CVec upsample_padded(const CVec& cir_taps, int factor) {
  // Zero-pad to a power of two before FFT interpolation: the 1016-tap CIR
  // then takes the radix-2 path throughout instead of Bluestein, which is
  // several times faster in the Monte-Carlo harnesses. The padding splices
  // zeros at the window end only, leaving interior peaks untouched.
  CVec padded(dsp::next_pow2(cir_taps.size()), Complex{});
  std::copy(cir_taps.begin(), cir_taps.end(), padded.begin());
  return dsp::upsample_fft(padded, factor);
}

}  // namespace detail

struct SearchSubtractDetector::TemplateBank {
  double ts_up = 0.0;
  std::size_t max_len = 0;  // longest template in the bank
  struct Entry {
    dsp::MatchedFilter filter;
    CVec unit_template;
    double raw_norm = 0.0;         // ||s|| on the upsampled grid
    std::size_t centre_index = 0;  // peak sample within the template
    std::size_t length = 0;
    std::uint8_t reg = 0x93;
  };
  std::vector<Entry> entries;
};

// Per-CIR working set of the fast detection path: the residual, its
// spectra, the per-template correlation outputs, and the subtraction
// window. Pooled per thread, so a warm thread allocates nothing.
struct SearchSubtractDetector::FastState {
  CVec padded_cir;
  CVec residual;
  CVec spec_m;   // spectrum of the upsampled residual at its own length M
  CVec spec_p;   // spectrum of the zero-padded residual at the bank length P
  CVec delta;    // subtracted waveform inside the update window
  std::vector<CVec> ys;  // one correlation output per template
  std::size_t kM = 0;    // upsampled residual length
  std::size_t kP = 0;    // padded bank-correlation length
};

SearchSubtractDetector::SearchSubtractDetector(DetectorConfig config)
    : config_(std::move(config)) {
  detail::validate_detector_config(config_);
}

SearchSubtractDetector::~SearchSubtractDetector() = default;
SearchSubtractDetector::SearchSubtractDetector(SearchSubtractDetector&&) noexcept =
    default;
SearchSubtractDetector& SearchSubtractDetector::operator=(
    SearchSubtractDetector&&) noexcept = default;

namespace {

// Thread-local bank cache: detectors constructed per Monte-Carlo trial with
// identical configuration share one bank (templates and matched-filter
// spectra) instead of rebuilding it every trial. Keyed by everything the
// bank depends on: the shape registers and the upsampled sample period.
struct BankCache {
  struct Key {
    std::vector<std::uint8_t> registers;
    std::uint64_t ts_up_bits = 0;
    bool operator==(const Key& other) const {
      return ts_up_bits == other.ts_up_bits && registers == other.registers;
    }
  };
  struct KeyHash {
    std::size_t operator()(const Key& key) const {
      std::uint64_t h = hash_mix(key.ts_up_bits);
      for (const std::uint8_t reg : key.registers) h = hash_combine(h, reg);
      return static_cast<std::size_t>(h);
    }
  };
  std::unordered_map<Key, std::shared_ptr<const SearchSubtractDetector::TemplateBank>,
                     KeyHash>
      entries;
  std::size_t hits = 0;
  std::size_t misses = 0;
};

BankCache& bank_cache() {
  thread_local BankCache cache;
  return cache;
}

// Thread-local pool of fast-path working sets: slot 0 serves single-CIR
// detect(); detect_batch holds one slot per in-flight CIR of a chunk.
std::vector<SearchSubtractDetector::FastState>& fast_states(
    std::size_t count) {
  thread_local std::vector<SearchSubtractDetector::FastState> states;
  if (states.size() < count) states.resize(count);
  return states;
}

}  // namespace

const SearchSubtractDetector::TemplateBank& SearchSubtractDetector::bank_for(
    double ts_s) const {
  UWB_EXPECTS(ts_s > 0.0);
  const double ts_up = ts_s / config_.upsample_factor;
  if (bank_ && std::abs(bank_->ts_up - ts_up) < 1e-18) return *bank_;

  BankCache& cache = bank_cache();
  const BankCache::Key key{config_.shape_registers, double_bits(ts_up)};
  if (const auto it = cache.entries.find(key); it != cache.entries.end()) {
    ++cache.hits;
    UWB_OBS_COUNT("cache_bank_hits", 1);
    bank_ = it->second;
    return *bank_;
  }
  ++cache.misses;
  UWB_OBS_COUNT("cache_bank_misses", 1);

  auto bank = std::make_shared<TemplateBank>();
  bank->ts_up = ts_up;
  for (std::uint8_t reg : config_.shape_registers) {
    CVec raw = dw::cached_pulse_template(reg, ts_up);
    const double norm = std::sqrt(dsp::energy(raw));
    UWB_ENSURES(norm > 0.0);
    TemplateBank::Entry entry{dsp::MatchedFilter(std::move(raw)), {}, norm,
                              dw::template_centre_index(reg, ts_up),
                              0, reg};
    entry.unit_template = entry.filter.unit_template();
    entry.length = entry.unit_template.size();
    bank->max_len = std::max(bank->max_len, entry.length);
    bank->entries.push_back(std::move(entry));
  }
  bank_ = bank;
  cache.entries.emplace(key, std::move(bank));
  return *bank_;
}

SearchSubtractDetector::BankCacheStats
SearchSubtractDetector::bank_cache_stats() {
  const BankCache& cache = bank_cache();
  return {cache.hits, cache.misses};
}

SearchSubtractDetector::BankCacheStats
SearchSubtractDetector::bank_cache_stats_total() {
  // Registry-backed totals (obs shards sum per-thread counts). Zero in
  // UWB_OBS_DISABLED builds, where the counting macros compile out.
  const auto snap = obs::MetricsRegistry::instance().aggregate();
  return {snap.counter("cache_bank_hits"), snap.counter("cache_bank_misses")};
}

void SearchSubtractDetector::clear_bank_cache() {
  bank_cache().entries.clear();
}

CVec SearchSubtractDetector::matched_filter_output(const CVec& cir_taps,
                                                   double ts_s,
                                                   int shape_index) const {
  UWB_EXPECTS(shape_index >= 0 &&
              shape_index < static_cast<int>(config_.shape_registers.size()));
  const TemplateBank& bank = bank_for(ts_s);
  const CVec up = dsp::upsample_fft(cir_taps, config_.upsample_factor);
  return bank.entries[static_cast<std::size_t>(shape_index)].filter.apply(up);
}

std::vector<DetectedResponse> SearchSubtractDetector::detect(
    const CVec& cir_taps, double ts_s, int max_responses) const {
  return detect_impl(cir_taps, ts_s, max_responses, nullptr);
}

SearchSubtractDetector::DetectionTrace SearchSubtractDetector::detect_with_trace(
    const CVec& cir_taps, double ts_s, int max_responses) const {
  DetectionTrace trace;
  trace.ts_up = ts_s / config_.upsample_factor;
  trace.responses = detect_impl(cir_taps, ts_s, max_responses, &trace);
  return trace;
}

std::vector<DetectedResponse> SearchSubtractDetector::detect_impl(
    const CVec& cir_taps, double ts_s, int max_responses,
    DetectionTrace* trace) const {
  UWB_EXPECTS(!cir_taps.empty());
  UWB_EXPECTS(max_responses >= 1);
  const TemplateBank& bank = bank_for(ts_s);
  if (trace != nullptr || config_.exact_recompute)
    return detect_exact(cir_taps, bank, max_responses, trace);
  return detect_fast(cir_taps, bank, max_responses);
}

namespace {

// Peak refinement and bookkeeping shared by both detection paths.
struct PeakSelection {
  int shape = -1;
  std::size_t index = 0;
  double mag = -1.0;
};

// Parabolic interpolation of |y| around the peak: the fractional pulse
// position, and the refined magnitude at that position.
void refine_peak(const CVec& y, std::size_t idx, double mag, double* frac,
                 double* mag_refined) {
  *frac = 0.0;
  *mag_refined = mag;
  if (idx > 0 && idx + 1 < y.size()) {
    const double ym = std::abs(y[idx - 1]);
    const double yp = std::abs(y[idx + 1]);
    const double denom = ym - 2.0 * mag + yp;
    if (denom < 0.0) {
      *frac = std::clamp(0.5 * (ym - yp) / denom, -0.5, 0.5);
      *mag_refined = mag - 0.25 * (ym - yp) * (*frac);
    }
  }
}

}  // namespace

std::vector<DetectedResponse> SearchSubtractDetector::detect_exact(
    const CVec& cir_taps, const TemplateBank& bank, int max_responses,
    DetectionTrace* trace) const {
  const double ts_up = bank.ts_up;
  CVec residual = detail::upsample_padded(cir_taps, config_.upsample_factor);

  std::vector<DetectedResponse> found;
  found.reserve(static_cast<std::size_t>(max_responses));
  double strongest = 0.0;
  for (int k = 0; k < max_responses; ++k) {
    // Step 2/3: matched filter every template, take the global maximum.
    PeakSelection best;
    CVec best_y;
    for (std::size_t i = 0; i < bank.entries.size(); ++i) {
      CVec y = bank.entries[i].filter.apply(residual);
      const std::size_t idx = dsp::argmax_abs(y);
      const double mag = std::abs(y[idx]);
      if (mag > best.mag) {
        best = {static_cast<int>(i), idx, mag};
        best_y = std::move(y);
      }
    }
    UWB_ENSURES(best.shape >= 0);

    // Stop at the noise floor of the *filter output* (upsampling correlates
    // the accumulator noise, so the matched-filter noise gain must be
    // measured, not assumed white); never stop by absolute power bounds.
    const double noise = dsp::noise_sigma_estimate(best_y);
    const bool below_noise =
        best.mag < config_.noise_threshold_factor * noise;
    const bool below =
        below_noise || (strongest > 0.0 &&
                        best.mag < config_.relative_stop_fraction * strongest);
    if (below) {
      UWB_FR_EVENT(.kind = obs::FrKind::kDetect, .name = "peak_rejected",
                   .detail = below_noise ? "below_noise" : "relative_stop",
                   .v0 = {"mag", best.mag},
                   .v1 = {"threshold",
                          below_noise
                              ? config_.noise_threshold_factor * noise
                              : config_.relative_stop_fraction * strongest},
                   .v2 = {"shape", static_cast<double>(best.shape)});
      // The rejected final output still belongs to the trace (it is what
      // shows the residual has hit the noise floor).
      if (trace) trace->mf_outputs.push_back(std::move(best_y));
      break;
    }
    strongest = std::max(strongest, best.mag);

    const auto& entry = bank.entries[static_cast<std::size_t>(best.shape)];

    // Sub-sample refinement: parabolic interpolation of |y| around the peak
    // gives the fractional pulse position; subtracting the fractionally
    // shifted template keeps the residual below the noise floor instead of
    // leaving quantisation sidelobes.
    double frac = 0.0, mag_refined = best.mag;
    refine_peak(best_y, best.index, best.mag, &frac, &mag_refined);
    const Complex amp_at_peak =
        best_y[best.index] * (mag_refined / best.mag) / entry.raw_norm;
    // best_y is no longer needed: hand it to the trace without copying.
    if (trace) trace->mf_outputs.push_back(std::move(best_y));

    DetectedResponse resp;
    resp.index_upsampled = static_cast<double>(best.index) + frac +
                           static_cast<double>(entry.centre_index);
    resp.tau_s = resp.index_upsampled * ts_up;
    // Step 4: amplitude from the filter output (template has unit energy, so
    // the physical peak amplitude is y / ||s||).
    resp.amplitude = amp_at_peak;
    resp.shape_index =
        config_.shape_registers.size() > 1 ? best.shape : -1;
    UWB_FR_EVENT(.kind = obs::FrKind::kDetect, .name = "peak_accepted",
                 .v0 = {"mag", best.mag},
                 .v1 = {"threshold", config_.noise_threshold_factor * noise},
                 .v2 = {"tau_s", resp.tau_s},
                 .v3 = {"shape", static_cast<double>(best.shape)});
    found.push_back(resp);

    // Step 5: subtract the estimated response, evaluating the analytic pulse
    // at the fractional delay.
    const auto n0 = static_cast<std::ptrdiff_t>(best.index);
    const auto len = static_cast<std::ptrdiff_t>(entry.length);
    const auto res_n = static_cast<std::ptrdiff_t>(residual.size());
    const auto centre = static_cast<double>(entry.centre_index);
    for (std::ptrdiff_t m = std::max<std::ptrdiff_t>(0, -n0);
         m < std::min(len + 1, res_n - n0); ++m) {
      const double t = (static_cast<double>(m) - centre - frac) * ts_up;
      residual[static_cast<std::size_t>(n0 + m)] -=
          amp_at_peak * dw::pulse_value(entry.reg, t);
    }
  }

  // Step 7: ascending path delay, closest responder first.
  std::sort(found.begin(), found.end(),
            [](const DetectedResponse& a, const DetectedResponse& b) {
              return a.tau_s < b.tau_s;
            });
  return found;
}

void SearchSubtractDetector::prepare_residual(const CVec& cir_taps,
                                              const TemplateBank& bank,
                                              FastState& st) const {
  const int factor = config_.upsample_factor;
  const std::size_t n2 = dsp::next_pow2(cir_taps.size());
  const std::size_t kM = n2 * static_cast<std::size_t>(factor);
  // One padded length for the whole bank (sized by the longest template) so
  // every template correlates against the same residual spectrum.
  const std::size_t kP = dsp::next_pow2(kM + bank.max_len - 1);
  st.kM = kM;
  st.kP = kP;

  // Step 1: upsample the zero-padded CIR, keeping both the time-domain
  // residual and its length-M spectrum (the zero-stuffed CIR spectrum).
  CVec& residual = st.residual;
  CVec& spec_m = st.spec_m;
  spec_m.resize(kM);
  {
  UWB_OBS_SPAN("upsample");
  if (factor == 1) {
    residual.resize(kM);
    std::copy(cir_taps.begin(), cir_taps.end(), residual.begin());
    std::fill(residual.begin() + static_cast<std::ptrdiff_t>(cir_taps.size()),
              residual.end(), Complex{});
    std::copy(residual.begin(), residual.end(), spec_m.begin());
    dsp::plan_for(kM).transform_pow2(spec_m.data(), false);
  } else {
    CVec& padded = st.padded_cir;
    padded.resize(n2);
    std::copy(cir_taps.begin(), cir_taps.end(), padded.begin());
    std::fill(padded.begin() + static_cast<std::ptrdiff_t>(cir_taps.size()),
              padded.end(), Complex{});
    dsp::plan_for(n2).transform_pow2(padded.data(), false);
    // Fold the upsampling gain into the CIR spectrum (n2 samples) instead
    // of the stuffed spectrum (kM samples).
    simd::scale(reinterpret_cast<double*>(padded.data()),
                static_cast<double>(factor), n2);
    dsp::upsample_spectrum(padded.data(), n2, factor, spec_m.data());
    residual = spec_m;
    dsp::plan_for(kM).transform_pow2(residual.data(), true);
    const double inv_m = 1.0 / static_cast<double>(kM);
    simd::scale(reinterpret_cast<double*>(residual.data()), inv_m, kM);
  }
  }

  // Forward spectrum of the zero-padded residual at the bank length P.
  // For the common P == 2M case the transform collapses with the upsample:
  // even bins are the length-M spectrum we already hold, odd bins are one
  // length-M transform of the twiddle-modulated residual (the first
  // decimation-in-frequency stage of FFT_P run on an input whose upper half
  // is zero).
  CVec& spec_p = st.spec_p;
  spec_p.resize(kP);
  {
  UWB_OBS_SPAN("fft");
  if (kP == kM) {
    std::copy(spec_m.begin(), spec_m.end(), spec_p.begin());
  } else if (kP == 2 * kM) {
    CVec& modulated = st.padded_cir;  // padded_cir is dead past step 1
    modulated.resize(kM);
    const double* w =
        reinterpret_cast<const double*>(dsp::plan_for(kP).twiddle_half());
    const double* u = reinterpret_cast<const double*>(residual.data());
    double* t = reinterpret_cast<double*>(modulated.data());
    simd::cmul(u, w, t, kM);
    dsp::plan_for(kM).transform_pow2(modulated.data(), false);
    for (std::size_t k = 0; k < kM; ++k) {
      spec_p[2 * k] = spec_m[k];
      spec_p[2 * k + 1] = modulated[k];
    }
  } else {
    // Degenerate sizes (tiny CIR, long templates): plain padded transform.
    std::copy(residual.begin(), residual.end(), spec_p.begin());
    std::fill(spec_p.begin() + static_cast<std::ptrdiff_t>(kM), spec_p.end(),
              Complex{});
    dsp::plan_for(kP).transform_pow2(spec_p.data(), false);
  }
  }
}

// uwb-hot-path: the per-template correlation inner loop dominates detect
// latency (bench_detect); lint enforces that no transitive callee allocates.
void SearchSubtractDetector::bank_correlate(const TemplateBank& bank,
                                            FastState& st) const {
  // Step 2 (first iteration): one pointwise multiply + inverse transform
  // per template against the shared residual spectrum.
  const std::size_t n_shapes = bank.entries.size();
  if (st.ys.size() < n_shapes) st.ys.resize(n_shapes);
  UWB_OBS_SPAN("bank_correlate");
  for (std::size_t i = 0; i < n_shapes; ++i)
    bank.entries[i].filter.apply_spectrum(st.spec_p.data(), st.kP, st.kM,
                                          st.ys[i]);
}

std::vector<DetectedResponse> SearchSubtractDetector::search_loop(
    const TemplateBank& bank, int max_responses, FastState& st) const {
  const double ts_up = bank.ts_up;
  const std::size_t kM = st.kM;
  const std::size_t n_shapes = bank.entries.size();
  CVec& residual = st.residual;

  std::vector<DetectedResponse> found;
  found.reserve(static_cast<std::size_t>(max_responses));
  double strongest = 0.0;
  for (int k = 0; k < max_responses; ++k) {
    // Step 2/3: global maximum over templates and positions. |y|^2 compare:
    // same argmax, no hypot per sample.
    PeakSelection best;
    double best_norm = -1.0;
    {
    UWB_OBS_SPAN("peak_pick");
    for (std::size_t i = 0; i < n_shapes; ++i) {
      const double* y = reinterpret_cast<const double*>(st.ys[i].data());
      const std::size_t idx = simd::argmax_norm(y, kM);
      const double max_norm =
          y[2 * idx] * y[2 * idx] + y[2 * idx + 1] * y[2 * idx + 1];
      if (max_norm > best_norm) {
        best_norm = max_norm;
        best = {static_cast<int>(i), idx, 0.0};
      }
    }
    }
    UWB_ENSURES(best.shape >= 0);
    const CVec& best_y = st.ys[static_cast<std::size_t>(best.shape)];
    best.mag = std::abs(best_y[best.index]);

    const double noise = dsp::noise_sigma_estimate(best_y);
    if (best.mag < config_.noise_threshold_factor * noise) {
      UWB_FR_EVENT(.kind = obs::FrKind::kDetect, .name = "peak_rejected",
                   .detail = "below_noise", .v0 = {"mag", best.mag},
                   .v1 = {"threshold", config_.noise_threshold_factor * noise},
                   .v2 = {"shape", static_cast<double>(best.shape)});
      break;
    }
    if (strongest > 0.0 &&
        best.mag < config_.relative_stop_fraction * strongest) {
      UWB_FR_EVENT(.kind = obs::FrKind::kDetect, .name = "peak_rejected",
                   .detail = "relative_stop", .v0 = {"mag", best.mag},
                   .v1 = {"threshold",
                          config_.relative_stop_fraction * strongest},
                   .v2 = {"shape", static_cast<double>(best.shape)});
      break;
    }
    strongest = std::max(strongest, best.mag);

    const auto& entry = bank.entries[static_cast<std::size_t>(best.shape)];
    double frac = 0.0, mag_refined = best.mag;
    refine_peak(best_y, best.index, best.mag, &frac, &mag_refined);
    const Complex amp_at_peak =
        best_y[best.index] * (mag_refined / best.mag) / entry.raw_norm;

    DetectedResponse resp;
    resp.index_upsampled = static_cast<double>(best.index) + frac +
                           static_cast<double>(entry.centre_index);
    resp.tau_s = resp.index_upsampled * ts_up;
    resp.amplitude = amp_at_peak;
    resp.shape_index =
        config_.shape_registers.size() > 1 ? best.shape : -1;
    UWB_FR_EVENT(.kind = obs::FrKind::kDetect, .name = "peak_accepted",
                 .v0 = {"mag", best.mag},
                 .v1 = {"threshold", config_.noise_threshold_factor * noise},
                 .v2 = {"tau_s", resp.tau_s},
                 .v3 = {"shape", static_cast<double>(best.shape)});
    found.push_back(resp);

    if (k + 1 == max_responses) break;  // last iteration: no update needed

    // Step 5: subtract the estimated response from the residual, capturing
    // the subtracted waveform for the incremental correlation update.
    UWB_OBS_SPAN("subtract_update");
    const auto n0 = static_cast<std::ptrdiff_t>(best.index);
    const auto len = static_cast<std::ptrdiff_t>(entry.length);
    const auto res_n = static_cast<std::ptrdiff_t>(kM);
    const auto centre = static_cast<double>(entry.centre_index);
    const std::ptrdiff_t m_lo = std::max<std::ptrdiff_t>(0, -n0);
    const std::ptrdiff_t m_hi = std::min(len + 1, res_n - n0);
    CVec& delta = st.delta;
    delta.resize(static_cast<std::size_t>(std::max<std::ptrdiff_t>(0, m_hi - m_lo)));
    for (std::ptrdiff_t m = m_lo; m < m_hi; ++m) {
      const double t = (static_cast<double>(m) - centre - frac) * ts_up;
      const Complex dv = amp_at_peak * dw::pulse_value(entry.reg, t);
      delta[static_cast<std::size_t>(m - m_lo)] = dv;
      residual[static_cast<std::size_t>(n0 + m)] -= dv;
    }

    // Incremental update: the subtraction only changed residual samples
    // [n0+m_lo, n0+m_hi), so each template's correlation output changes
    // only where its window overlaps that range — a short windowed
    // correlation (O(K L^2) per iteration) instead of K full transforms.
    const double* dd = reinterpret_cast<const double*>(delta.data());
    for (std::size_t i = 0; i < n_shapes; ++i) {
      const auto len_i =
          static_cast<std::ptrdiff_t>(bank.entries[i].length);
      const double* sd = reinterpret_cast<const double*>(
          bank.entries[i].unit_template.data());
      double* yd = reinterpret_cast<double*>(st.ys[i].data());
      const std::ptrdiff_t j_lo =
          std::max<std::ptrdiff_t>(0, n0 + m_lo - len_i + 1);
      const std::ptrdiff_t j_hi = std::min(res_n, n0 + m_hi);
      simd::corr_window_update(yd, dd, sd, j_lo, j_hi, n0 + m_lo, n0 + m_hi,
                               len_i);
#ifndef NDEBUG
      // Debug contract: the incrementally maintained output equals a fresh
      // correlation of the updated residual to floating-point roundoff.
      {
        const CVec ref = bank.entries[i].filter.apply(residual);
        double max_diff = 0.0, ref_peak = 0.0;
        for (std::size_t j = 0; j < kM; ++j) {
          max_diff = std::max(max_diff, std::abs(ref[j] - st.ys[i][j]));
          ref_peak = std::max(ref_peak, std::abs(ref[j]));
        }
        assert(max_diff <= 1e-6 * (1.0 + ref_peak) &&
               "incremental matched-filter update diverged from exact");
      }
#endif
    }
  }

  std::sort(found.begin(), found.end(),
            [](const DetectedResponse& a, const DetectedResponse& b) {
              return a.tau_s < b.tau_s;
            });
  return found;
}

std::vector<DetectedResponse> SearchSubtractDetector::detect_fast(
    const CVec& cir_taps, const TemplateBank& bank, int max_responses) const {
  FastState& st = fast_states(1).front();
  prepare_residual(cir_taps, bank, st);
  bank_correlate(bank, st);
  return search_loop(bank, max_responses, st);
}

std::vector<std::vector<DetectedResponse>> SearchSubtractDetector::detect_batch(
    const std::vector<CVec>& cirs, double ts_s, int max_responses) const {
  UWB_EXPECTS(max_responses >= 1);
  std::vector<std::vector<DetectedResponse>> out(cirs.size());
  if (cirs.empty()) return out;
  const std::size_t taps = cirs.front().size();
  UWB_EXPECTS(taps >= 1);
  for (const CVec& cir : cirs) UWB_EXPECTS(cir.size() == taps);
  const TemplateBank& bank = bank_for(ts_s);

  if (config_.exact_recompute) {
    for (std::size_t i = 0; i < cirs.size(); ++i)
      out[i] = detect_exact(cirs[i], bank, max_responses, nullptr);
    return out;
  }

  // Stage-major execution over bounded chunks: first every CIR's upsample
  // and forward spectra, then one template-major bank-correlation sweep
  // (each template's spectrum is loaded once per chunk instead of once per
  // CIR), then the per-CIR iterative search. The chunk is kept small so
  // the per-item scratch (several kP-sized arrays each) stays
  // cache-resident; results are identical to per-CIR detect() in any
  // chunking.
  constexpr std::size_t kChunk = 2;
  const std::size_t n_shapes = bank.entries.size();
  auto& states = fast_states(std::min<std::size_t>(kChunk, cirs.size()));
  for (std::size_t base = 0; base < cirs.size(); base += kChunk) {
    const std::size_t count = std::min(kChunk, cirs.size() - base);
    for (std::size_t i = 0; i < count; ++i)
      prepare_residual(cirs[base + i], bank, states[i]);
    {
      UWB_OBS_SPAN("bank_correlate");
      for (std::size_t t = 0; t < n_shapes; ++t) {
        for (std::size_t i = 0; i < count; ++i) {
          FastState& st = states[i];
          if (st.ys.size() < n_shapes) st.ys.resize(n_shapes);
          bank.entries[t].filter.apply_spectrum(st.spec_p.data(), st.kP,
                                                st.kM, st.ys[t]);
        }
      }
    }
    for (std::size_t i = 0; i < count; ++i)
      out[base + i] = search_loop(bank, max_responses, states[i]);
  }
  return out;
}

}  // namespace uwb::ranging
