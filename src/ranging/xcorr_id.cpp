#include "ranging/xcorr_id.hpp"

#include <algorithm>
#include <cmath>

#include "common/expects.hpp"
#include "dsp/signal.hpp"

namespace uwb::ranging {

XcorrIdentifier::XcorrIdentifier(double window_s) : window_s_(window_s) {
  UWB_EXPECTS(window_s > 0.0);
}

CVec XcorrIdentifier::extract_snippet(const CVec& cir_taps, double ts_s,
                                      double tau_s, double window_s) {
  UWB_EXPECTS(!cir_taps.empty());
  UWB_EXPECTS(ts_s > 0.0);
  const auto n = static_cast<std::ptrdiff_t>(cir_taps.size());
  const auto centre = static_cast<std::ptrdiff_t>(std::llround(tau_s / ts_s));
  const auto half = static_cast<std::ptrdiff_t>(std::ceil(window_s / ts_s));
  CVec snippet;
  for (std::ptrdiff_t i = centre - half; i <= centre + half; ++i)
    snippet.push_back(i >= 0 && i < n ? cir_taps[static_cast<std::size_t>(i)]
                                      : Complex{});
  return dsp::normalize_energy(snippet);
}

void XcorrIdentifier::add_reference(int responder_id, const CVec& cir_taps,
                                    double ts_s, double response_tau_s) {
  UWB_EXPECTS(responder_id >= 0);
  references_[responder_id] =
      extract_snippet(cir_taps, ts_s, response_tau_s, window_s_);
}

XcorrIdentifier::Match XcorrIdentifier::identify(
    const CVec& cir_taps, double ts_s, const DetectedResponse& response) const {
  Match best;
  if (references_.empty()) return best;
  const CVec probe =
      extract_snippet(cir_taps, ts_s, response.tau_s, window_s_);
  const auto np = static_cast<std::ptrdiff_t>(probe.size());
  // Small lag search (+-1/4 of the window) absorbs the TX-truncation shift.
  const std::ptrdiff_t max_lag = np / 4;
  for (const auto& [id, ref] : references_) {
    for (std::ptrdiff_t lag = -max_lag; lag <= max_lag; ++lag) {
      Complex acc{};
      for (std::ptrdiff_t i = std::max<std::ptrdiff_t>(0, lag);
           i < std::min(np, np + lag); ++i) {
        const std::ptrdiff_t j = i - lag;
        if (j < 0 || j >= static_cast<std::ptrdiff_t>(ref.size())) continue;
        acc += probe[static_cast<std::size_t>(i)] *
               std::conj(ref[static_cast<std::size_t>(j)]);
      }
      const double score = std::abs(acc);
      if (score > best.score) {
        best.score = score;
        best.responder_id = id;
      }
    }
  }
  best.score = std::min(best.score, 1.0);
  return best;
}

}  // namespace uwb::ranging
