// Threshold-based response detection — the baseline of paper Sect. VI
// (after Falsi et al.): scan the CIR against a threshold; on each crossing
// take the maximum of the following pulse-duration window as a response,
// then continue scanning after the window.
//
// Works when responses are well separated; with overlapping responses the
// crossing window swallows both pulses, which is exactly the failure mode
// the paper quantifies (48% vs 92.6% success).
#pragma once

#include "ranging/detector.hpp"

namespace uwb::ranging {

class ThresholdDetector final : public ResponseDetector {
 public:
  /// Uses upsample_factor, the *first* shape register (for the window
  /// length), and noise_threshold_factor of the config.
  explicit ThresholdDetector(DetectorConfig config);

  std::vector<DetectedResponse> detect(const CVec& cir_taps, double ts_s,
                                       int max_responses) const override;

  const DetectorConfig& config() const { return config_; }

 private:
  DetectorConfig config_;
};

}  // namespace uwb::ranging
