// High-level concurrent-ranging scenario runner — the library's main entry
// point. Owns the simulator, medium, and nodes; each run_round() performs
// one full concurrent-ranging round (INIT broadcast, simultaneous RESPs,
// CIR detection, slot/shape decoding, Eq. 2/4 distance computation) and
// returns everything a caller or experiment harness needs.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <vector>

#include <set>

#include "channel/channel_model.hpp"
#include "common/result.hpp"
#include "dw1000/cir.hpp"
#include "dw1000/phy_config.hpp"
#include "dw1000/timestamping.hpp"
#include "fault/attack.hpp"
#include "fault/fault.hpp"
#include "geom/room.hpp"
#include "ranging/attack_detector.hpp"
#include "ranging/protocol.hpp"
#include "ranging/search_subtract.hpp"
#include "sim/medium.hpp"
#include "sim/node.hpp"
#include "sim/simulator.hpp"

namespace uwb::ranging {

/// Per-responder outcome of a round, from the session's orchestration view
/// (DESIGN.md Sect. 10 maps each variant to its DW1000 failure mode).
enum class RangingStatus {
  /// The responder's RESP reached the initiator's batch and the round's
  /// sync payload decoded.
  kOk,
  /// A preamble detector failed to lock: the responder missed the INIT, or
  /// its RESP was lost at the initiator.
  kNoPreamble,
  /// The RESP arrived but the round's sync payload failed its FCS, so no
  /// d_TWR anchor exists to place any distance.
  kCrcError,
  /// The responder's delayed TX aborted (DW1000 HPDWARN half-period
  /// warning, or an injected late-TX fault).
  kLateTxAbort,
  /// The initiator's RX window expired without attributing this responder
  /// (muted responder, or no RESP batch formed at all).
  kTimedOut,
  /// The exchange completed but the AttackDetector indicted this responder
  /// (see RoundOutcome::verdicts for the check and evidence). Overrides kOk
  /// only: a responder that failed outright keeps its failure status.
  kSuspect,
};

const char* to_string(RangingStatus status);

/// One responder's report for one round (final attempt).
struct ResponderReport {
  int id = -1;
  RangingStatus status = RangingStatus::kTimedOut;
};

/// Retry/timeout policy of the resilient session. Defaults reproduce the
/// historical single-attempt behaviour bit for bit.
struct ResilienceConfig {
  /// Additional protocol attempts after a failed round (0 = no retry). A
  /// round fails when its sync payload did not decode.
  int max_retries = 0;
  /// Simulated-time backoff before retry k (1-based):
  /// retry_backoff * backoff_factor^(k-1). Deterministic — no randomness.
  Seconds retry_backoff{500e-6};
  double backoff_factor = 2.0;
  /// Extra listen time after the last RPM slot before the initiator's RX
  /// window times out.
  Seconds rx_extra_listen{5000e-6};

  void validate() const;
};

/// Aggregate resilience bookkeeping over a scenario's lifetime.
struct SessionStats {
  std::uint64_t rounds = 0;
  std::uint64_t retry_attempts = 0;
  /// Rounds whose sync payload decoded but with >= 1 responder not kOk.
  std::uint64_t degraded_rounds = 0;
  /// Rounds that still had no decoded payload after all retries.
  std::uint64_t failed_rounds = 0;
  /// Per-responder kSuspect reports issued (sum over rounds).
  std::uint64_t suspect_reports = 0;
  /// Rounds with >= 1 kSuspect report.
  std::uint64_t suspect_rounds = 0;
};

/// A responder taking part in the scenario. The ID determines its RPM slot
/// and pulse shape via assign_responder().
struct ResponderSpec {
  int id = 0;
  geom::Vec2 position;
};

struct ScenarioConfig {
  geom::Room room = geom::Room::rectangular(20.0, 10.0);
  channel::ChannelModelParams channel;
  sim::MediumParams medium;
  geom::Vec2 initiator_position{1.0, 5.0};
  std::vector<ResponderSpec> responders;
  ConcurrentRangingConfig ranging;
  dw::PhyConfig phy;
  dw::CirParams cir;
  dw::TimestampModelParams timestamping;
  /// Per-node crystal drift is drawn from N(0, sigma) [ppm].
  double clock_drift_sigma_ppm = 1.0;
  /// Responses the detector extracts per round; 0 = number of responders
  /// (the paper's "N-1 known" assumption). NLOS studies raise it so a
  /// weak responder outranked by multipath is still surfaced.
  int detect_max_responses = 0;
  /// Slot-aware selection (extension): collapse multiple detections that
  /// decode to the same responder ID into the best representative. Pairs
  /// well with a raised detect_max_responses.
  bool slot_aware_selection = false;
  /// Hardware delayed-TX truncation (ablation switch).
  bool delayed_tx_truncation = true;
  /// Apply the receiver's carrier-frequency-offset estimate to Eq. 2
  /// (ablation switch: off shows SS-TWR's raw drift sensitivity).
  bool cfo_correction = true;
  /// Physical per-device antenna delay applied to every node (0 =
  /// calibrated-out, the default for algorithm experiments). See
  /// ranging::estimate_antenna_delay for the commissioning procedure.
  Seconds antenna_delay{};
  /// Fault-injection plan (inert by default; see src/fault/fault.hpp). An
  /// all-zero plan leaves every RNG stream untouched, so results are
  /// byte-identical to a build without the subsystem.
  fault::FaultPlan fault;
  /// Adversary model (inert by default; see src/fault/attack.hpp). Same
  /// determinism contract as `fault`: an inactive plan is byte-identical to
  /// a build without the subsystem, including every CIR tap.
  fault::AttackPlan attack;
  /// Attack cross-checks (off by default; see ranging/attack_detector.hpp).
  /// Indicted responders report RangingStatus::kSuspect instead of kOk.
  AttackDetectorConfig attack_detector;
  /// Retry/timeout/degradation policy.
  ResilienceConfig resilience;
  std::uint64_t seed = 1;
};

/// Ground truth recorded per responder per round (for evaluation only —
/// nothing in the protocol path reads this).
struct ResponderTruth {
  int id = -1;
  double true_distance_m = 0.0;
  /// Global time this responder's RESP RMARKER left the antenna.
  SimTime resp_tx_rmarker;
  /// Global arrival time of its direct path at the initiator.
  SimTime resp_arrival;
};

struct RoundOutcome {
  /// The initiator's receiver produced a result at all.
  bool completed = false;
  /// The sync frame's payload decoded (prerequisite for d_twr).
  bool payload_decoded = false;
  /// Node id of the responder whose payload was decoded.
  int sync_responder_id = -1;
  /// SS-TWR distance to the sync responder [m] (Eq. 2, drift-corrected).
  double d_twr_m = 0.0;
  /// Raw detector output (ascending tau).
  std::vector<DetectedResponse> detections;
  /// Interpreted per-response estimates (distance, slot, shape, ID).
  std::vector<ResponderEstimate> estimates;
  /// The superposed CIR of the round.
  dw::CirEstimate cir;
  int frames_in_batch = 0;
  /// Ground truth per responder (keyed by arrival, ascending).
  std::vector<ResponderTruth> truths;
  /// Per-responder status of the final attempt, ascending responder id —
  /// one entry per configured responder, always populated. A round that
  /// loses k of N responders still carries the survivors' estimates; the
  /// casualties are reported here instead of aborting the round.
  std::vector<ResponderReport> responder_reports;
  /// AttackDetector indictments of the final attempt (empty when the
  /// detector is off or every check passed).
  std::vector<AttackVerdict> verdicts;
  /// Protocol attempts consumed (1 = no retry needed).
  int attempts = 1;
  /// Sync payload decoded but at least one responder is not kOk.
  bool degraded = false;
  /// The final attempt's sync payload failed its frame check sequence.
  bool crc_error = false;
};

class ConcurrentRangingScenario {
 public:
  /// Precondition: validate_config(config).ok(). Prefer create() when the
  /// configuration comes from user input.
  explicit ConcurrentRangingScenario(ScenarioConfig config);
  ~ConcurrentRangingScenario();

  ConcurrentRangingScenario(const ConcurrentRangingScenario&) = delete;
  ConcurrentRangingScenario& operator=(const ConcurrentRangingScenario&) = delete;

  /// Check a configuration for runtime-recoverable errors (user input):
  /// returns kInvalidConfig with a human-readable message instead of
  /// aborting. The constructor keeps UWB_EXPECTS for the same conditions as
  /// programmer-error preconditions.
  [[nodiscard]] static Status validate_config(const ScenarioConfig& config);

  /// Validating factory: the Status-path alternative to the throwing
  /// constructor.
  [[nodiscard]] static Result<std::unique_ptr<ConcurrentRangingScenario>> create(
      ScenarioConfig config);

  /// Run one concurrent-ranging round: up to 1 + max_retries protocol
  /// attempts with deterministic backoff, per-responder status reporting,
  /// and graceful degradation (survivors keep their estimates when some
  /// responders fail). Can be called repeatedly; simulated time advances
  /// monotonically and channels are redrawn per round.
  RoundOutcome run_round();

  /// Geometric initiator-responder distance.
  Meters true_distance(int responder_id) const;

  /// Move the initiator (e.g. a mobile tag between fixes).
  void set_initiator_position(geom::Vec2 position);

  sim::Node& initiator_node() { return *initiator_; }
  sim::Node& responder_node(int responder_id);
  sim::Simulator& simulator() { return sim_; }
  sim::Medium& medium() { return *medium_; }
  const sim::Medium& medium() const { return *medium_; }
  const ScenarioConfig& config() const { return config_; }
  const SearchSubtractDetector& detector() const { return detector_; }

  /// Fault injector (nullptr when the plan is inert).
  const fault::FaultInjector* fault_injector() const { return injector_.get(); }
  /// Attack injector (nullptr when the adversary plan is inert).
  const fault::AttackInjector* attack_injector() const {
    return attacker_.get();
  }
  /// Resilience bookkeeping since construction.
  const SessionStats& stats() const { return stats_; }

 private:
  void arm_responder(int responder_id);
  /// One protocol attempt (the historical run_round body).
  RoundOutcome run_attempt();
  /// Derive the per-responder reports / degraded flag of a finished attempt.
  void fill_reports(RoundOutcome& out) const;

  ScenarioConfig config_;
  Rng rng_;
  sim::Simulator sim_;
  std::unique_ptr<sim::Medium> medium_;
  std::unique_ptr<sim::Node> initiator_;
  std::map<int, std::unique_ptr<sim::Node>> responders_;
  SearchSubtractDetector detector_;
  std::unique_ptr<fault::FaultInjector> injector_;
  std::unique_ptr<fault::AttackInjector> attacker_;
  std::unique_ptr<AttackDetector> attack_detector_;
  /// Deployed responder IDs (the attack detector's unknown_id ground set).
  std::set<int> configured_ids_;
  SessionStats stats_;

  // Per-attempt state filled by the node callbacks.
  std::optional<sim::RxResult> initiator_result_;
  dw::DwTimestamp t_tx_init_;
  std::vector<ResponderTruth> truths_;
  std::set<int> muted_;
  std::set<int> late_aborted_;
};

}  // namespace uwb::ranging
