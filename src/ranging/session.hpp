// High-level concurrent-ranging scenario runner — the library's main entry
// point. Owns the simulator, medium, and nodes; each run_round() performs
// one full concurrent-ranging round (INIT broadcast, simultaneous RESPs,
// CIR detection, slot/shape decoding, Eq. 2/4 distance computation) and
// returns everything a caller or experiment harness needs.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "channel/channel_model.hpp"
#include "dw1000/cir.hpp"
#include "dw1000/phy_config.hpp"
#include "dw1000/timestamping.hpp"
#include "geom/room.hpp"
#include "ranging/protocol.hpp"
#include "ranging/search_subtract.hpp"
#include "ranging/twr.hpp"
#include "sim/medium.hpp"
#include "sim/node.hpp"
#include "sim/simulator.hpp"

namespace uwb::ranging {

/// A responder taking part in the scenario. The ID determines its RPM slot
/// and pulse shape via assign_responder().
struct ResponderSpec {
  int id = 0;
  geom::Vec2 position;
};

struct ScenarioConfig {
  geom::Room room = geom::Room::rectangular(20.0, 10.0);
  channel::ChannelModelParams channel;
  sim::MediumParams medium;
  geom::Vec2 initiator_position{1.0, 5.0};
  std::vector<ResponderSpec> responders;
  ConcurrentRangingConfig ranging;
  dw::PhyConfig phy;
  dw::CirParams cir;
  dw::TimestampModelParams timestamping;
  /// Per-node crystal drift is drawn from N(0, sigma) [ppm].
  double clock_drift_sigma_ppm = 1.0;
  /// Responses the detector extracts per round; 0 = number of responders
  /// (the paper's "N-1 known" assumption). NLOS studies raise it so a
  /// weak responder outranked by multipath is still surfaced.
  int detect_max_responses = 0;
  /// Slot-aware selection (extension): collapse multiple detections that
  /// decode to the same responder ID into the best representative. Pairs
  /// well with a raised detect_max_responses.
  bool slot_aware_selection = false;
  /// Hardware delayed-TX truncation (ablation switch).
  bool delayed_tx_truncation = true;
  /// Apply the receiver's carrier-frequency-offset estimate to Eq. 2
  /// (ablation switch: off shows SS-TWR's raw drift sensitivity).
  bool cfo_correction = true;
  /// Physical per-device antenna delay [s] applied to every node (0 =
  /// calibrated-out, the default for algorithm experiments). See
  /// ranging::estimate_antenna_delay_s for the commissioning procedure.
  double antenna_delay_s = 0.0;
  std::uint64_t seed = 1;
};

/// Ground truth recorded per responder per round (for evaluation only —
/// nothing in the protocol path reads this).
struct ResponderTruth {
  int id = -1;
  double true_distance_m = 0.0;
  /// Global time this responder's RESP RMARKER left the antenna.
  SimTime resp_tx_rmarker;
  /// Global arrival time of its direct path at the initiator.
  SimTime resp_arrival;
};

struct RoundOutcome {
  /// The initiator's receiver produced a result at all.
  bool completed = false;
  /// The sync frame's payload decoded (prerequisite for d_twr).
  bool payload_decoded = false;
  /// Node id of the responder whose payload was decoded.
  int sync_responder_id = -1;
  /// SS-TWR distance to the sync responder [m] (Eq. 2, drift-corrected).
  double d_twr_m = 0.0;
  /// Raw detector output (ascending tau).
  std::vector<DetectedResponse> detections;
  /// Interpreted per-response estimates (distance, slot, shape, ID).
  std::vector<ResponderEstimate> estimates;
  /// The superposed CIR of the round.
  dw::CirEstimate cir;
  int frames_in_batch = 0;
  /// Ground truth per responder (keyed by arrival, ascending).
  std::vector<ResponderTruth> truths;
};

class ConcurrentRangingScenario {
 public:
  explicit ConcurrentRangingScenario(ScenarioConfig config);
  ~ConcurrentRangingScenario();

  ConcurrentRangingScenario(const ConcurrentRangingScenario&) = delete;
  ConcurrentRangingScenario& operator=(const ConcurrentRangingScenario&) = delete;

  /// Run one concurrent-ranging round. Can be called repeatedly; simulated
  /// time advances monotonically and channels are redrawn per round.
  RoundOutcome run_round();

  /// Geometric initiator-responder distance [m].
  double true_distance(int responder_id) const;

  /// Move the initiator (e.g. a mobile tag between fixes).
  void set_initiator_position(geom::Vec2 position);

  sim::Node& initiator_node() { return *initiator_; }
  sim::Node& responder_node(int responder_id);
  sim::Simulator& simulator() { return sim_; }
  const ScenarioConfig& config() const { return config_; }
  const SearchSubtractDetector& detector() const { return detector_; }

 private:
  void arm_responder(int responder_id);

  ScenarioConfig config_;
  Rng rng_;
  sim::Simulator sim_;
  std::unique_ptr<sim::Medium> medium_;
  std::unique_ptr<sim::Node> initiator_;
  std::map<int, std::unique_ptr<sim::Node>> responders_;
  SearchSubtractDetector detector_;

  // Per-round state filled by the node callbacks.
  std::optional<sim::RxResult> initiator_result_;
  dw::DwTimestamp t_tx_init_;
  std::vector<ResponderTruth> truths_;
};

}  // namespace uwb::ranging
