// Network-wide concurrent ranging (extension of Sect. III's motivation).
//
// The paper counts N(N-1) scheduled messages for all-pairs distances vs N
// concurrent-ranging broadcasts. This module actually runs that sweep on
// the simulated radios: every node takes the initiator role once, all
// others respond concurrently, and the result is the full distance matrix
// plus the measured (not analytic) radio energy — the building block of the
// cooperative localisation the paper names as future work.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "channel/channel_model.hpp"
#include "common/result.hpp"
#include "geom/room.hpp"
#include "ranging/protocol.hpp"
#include "ranging/search_subtract.hpp"
#include "sim/medium.hpp"
#include "sim/node.hpp"
#include "sim/simulator.hpp"

namespace uwb::ranging {

struct NetworkConfig {
  geom::Room room = geom::Room::rectangular(20.0, 12.0, 10.0);
  channel::ChannelModelParams channel;
  sim::MediumParams medium;
  /// One entry per node; the vector index is the node's network address.
  std::vector<geom::Vec2> node_positions;
  /// Slot/shape plan applied to the responders of each round. Responder IDs
  /// are assigned per round by ascending node index (the initiator knows
  /// the mapping because membership is static).
  ConcurrentRangingConfig ranging;
  dw::PhyConfig phy;
  dw::CirParams cir;
  dw::TimestampModelParams timestamping;
  double clock_drift_sigma_ppm = 1.0;
  bool delayed_tx_truncation = true;
  bool slot_aware_selection = true;
  std::uint64_t seed = 1;
};

/// One initiator's view after its round.
struct NetworkRound {
  int initiator = -1;
  bool completed = false;
  /// distances[j]: estimated distance to node j (nullopt if that node's
  /// response was not decoded this round; entry `initiator` is nullopt).
  std::vector<std::optional<double>> distances;
  int frames_in_batch = 0;
};

/// Result of a full sweep (every node initiating once).
struct NetworkSweep {
  /// matrix[i][j]: distance node i measured to node j (nullopt if missed).
  std::vector<std::vector<std::optional<double>>> matrix;
  /// Total radio energy across all nodes for the whole sweep [J].
  double total_energy_j = 0.0;
  /// Simulated wall-clock duration of the sweep [s].
  double duration_s = 0.0;
  /// Rounds whose payload decoded.
  int completed_rounds = 0;
};

class NetworkRangingSession {
 public:
  /// Precondition: validate_config(config).ok(). Prefer create() when the
  /// configuration comes from user input.
  explicit NetworkRangingSession(NetworkConfig config);
  ~NetworkRangingSession();

  /// Runtime-recoverable configuration check (kInvalidConfig + message
  /// instead of aborting); the constructor keeps UWB_EXPECTS for the same
  /// conditions as programmer-error preconditions.
  [[nodiscard]] static Status validate_config(const NetworkConfig& config);

  /// Validating factory: the Status-path alternative to the throwing
  /// constructor.
  [[nodiscard]] static Result<std::unique_ptr<NetworkRangingSession>> create(
      NetworkConfig config);

  NetworkRangingSession(const NetworkRangingSession&) = delete;
  NetworkRangingSession& operator=(const NetworkRangingSession&) = delete;

  /// One concurrent-ranging round with node `initiator_index` initiating.
  NetworkRound run_round(int initiator_index);

  /// Every node initiates once, in index order.
  NetworkSweep run_full_sweep();

  int node_count() const { return static_cast<int>(nodes_.size()); }
  Meters true_distance(int i, int j) const;
  sim::Node& node(int index);

 private:
  /// Responder ID of node `node_index` in a round initiated by
  /// `initiator_index` (ascending node index, skipping the initiator).
  int responder_id_of(int node_index, int initiator_index) const;
  /// Inverse of responder_id_of.
  int node_of_responder(int responder_id, int initiator_index) const;

  NetworkConfig config_;
  Rng rng_;
  sim::Simulator sim_;
  std::unique_ptr<sim::Medium> medium_;
  std::vector<std::unique_ptr<sim::Node>> nodes_;
  SearchSubtractDetector detector_;

  // Per-round state.
  int current_initiator_ = -1;
  std::optional<sim::RxResult> initiator_result_;
  dw::DwTimestamp t_tx_init_;
};

}  // namespace uwb::ranging
