#include "ranging/twr.hpp"

#include "common/expects.hpp"
#include "obs/flight_recorder.hpp"

namespace uwb::ranging {

Seconds ss_twr_tof(const TwrTimestamps& ts, double cfo_ppm) {
  const Seconds t_round = ts.t_rx_init.diff_seconds(ts.t_tx_init);
  const Seconds t_reply = ts.t_tx_resp.diff_seconds(ts.t_rx_resp);
  UWB_EXPECTS(t_round > Seconds(0.0));
  UWB_EXPECTS(t_reply > Seconds(0.0));
  // The reply interval ticks on the responder's crystal: a responder
  // running cfo ppm fast reports an inflated reply interval, so rescale it
  // back onto the initiator's timescale before differencing.
  return (t_round - t_reply * (1.0 - cfo_ppm * 1e-6)) / 2.0;
}

Meters ss_twr_distance(const TwrTimestamps& ts, double cfo_ppm) {
  const Meters d = distance_from_tof(ss_twr_tof(ts, cfo_ppm));
  // Chain comes from the recorder context (the session computes TWR inside
  // the sync frame's chain scope).
  UWB_FR_EVENT(.kind = obs::FrKind::kTwr, .name = "ss_twr",
               .v0 = {"t_round_s",
                      ts.t_rx_init.diff_seconds(ts.t_tx_init).value()},
               .v1 = {"t_reply_s",
                      ts.t_tx_resp.diff_seconds(ts.t_rx_resp).value()},
               .v2 = {"cfo_ppm", cfo_ppm}, .v3 = {"d_m", d.value()});
  return d;
}

Seconds estimate_antenna_delay(Meters measured, Meters true_distance) {
  UWB_EXPECTS(true_distance >= Meters(0.0));
  // Symmetric delays: d_meas = d_true + c * delay (half per leg, both legs).
  return tof_from_distance(measured - true_distance);
}

Meters correct_antenna_delay(Meters measured, Seconds delay_a, Seconds delay_b) {
  UWB_EXPECTS(delay_a >= Seconds(0.0) && delay_b >= Seconds(0.0));
  return measured - distance_from_tof((delay_a + delay_b) / 2.0);
}

}  // namespace uwb::ranging
