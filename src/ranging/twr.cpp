#include "ranging/twr.hpp"

#include "common/constants.hpp"
#include "common/expects.hpp"

namespace uwb::ranging {

double ss_twr_tof_s(const TwrTimestamps& ts, double cfo_ppm) {
  const double t_round = ts.t_rx_init.diff_seconds(ts.t_tx_init);
  const double t_reply = ts.t_tx_resp.diff_seconds(ts.t_rx_resp);
  UWB_EXPECTS(t_round > 0.0);
  UWB_EXPECTS(t_reply > 0.0);
  // The reply interval ticks on the responder's crystal: a responder
  // running cfo ppm fast reports an inflated reply interval, so rescale it
  // back onto the initiator's timescale before differencing.
  return (t_round - t_reply * (1.0 - cfo_ppm * 1e-6)) / 2.0;
}

double ss_twr_distance(const TwrTimestamps& ts, double cfo_ppm) {
  return ss_twr_tof_s(ts, cfo_ppm) * k::c_air;
}

double estimate_antenna_delay_s(double measured_m, double true_m) {
  UWB_EXPECTS(true_m >= 0.0);
  // Symmetric delays: d_meas = d_true + c * delay (half per leg, both legs).
  return (measured_m - true_m) / k::c_air;
}

double correct_antenna_delay_m(double measured_m, double delay_a_s,
                               double delay_b_s) {
  UWB_EXPECTS(delay_a_s >= 0.0 && delay_b_s >= 0.0);
  return measured_m - k::c_air * (delay_a_s + delay_b_s) / 2.0;
}

}  // namespace uwb::ranging
