// Double-sided two-way ranging (asymmetric DS-TWR) — extension.
//
// The paper uses SS-TWR (Eq. 2), which needs carrier-frequency-offset
// compensation to survive crystal drift over the 290 us reply time. DS-TWR
// adds a third message (POLL -> RESP -> FINAL) and cancels drift to first
// order without any CFO estimate:
//
//   tof = (Ra*Rb - Da*Db) / (Ra + Rb + Da + Db)
//
// with Ra = t_rx_resp - t_tx_poll and Da = t_tx_final - t_rx_resp on the
// initiator clock, Rb = t_rx_final - t_tx_resp and Db = t_tx_resp -
// t_rx_poll on the responder clock. The bench_ablation_dstwr harness
// contrasts the three schemes across drift magnitudes.
#pragma once

#include <memory>
#include <optional>

#include "channel/channel_model.hpp"
#include "dw1000/clock.hpp"
#include "dw1000/phy_config.hpp"
#include "geom/room.hpp"
#include "sim/medium.hpp"
#include "sim/node.hpp"
#include "sim/simulator.hpp"

namespace uwb::ranging {

struct DsTwrTimestamps {
  // Initiator clock.
  dw::DwTimestamp t_tx_poll;
  dw::DwTimestamp t_rx_resp;
  dw::DwTimestamp t_tx_final;
  // Responder clock.
  dw::DwTimestamp t_rx_poll;
  dw::DwTimestamp t_tx_resp;
  dw::DwTimestamp t_rx_final;
};

/// Asymmetric DS-TWR time of flight.
Seconds ds_twr_tof(const DsTwrTimestamps& ts);

/// Asymmetric DS-TWR distance.
Meters ds_twr_distance(const DsTwrTimestamps& ts);

/// Consistency residual of the two half-exchanges: (Ra - Db)/2 and
/// (Rb - Da)/2 each estimate the round's ToF on their own, and with honest
/// clocks they disagree only by drift-scaled reply intervals (sub-ns at
/// crystal-spec drift). Forging t_tx_resp alone cancels here (it enters Db
/// and Rb with opposite signs) — but that naive forgery is already caught
/// by the reply-schedule check, because it inflates the apparent reply
/// interval Db. The residual catches the complementary, schedule-consistent
/// forgery: a responder shifting BOTH reported t_rx_poll and t_tx_resp by
/// +b keeps Db at the programmed reply (evading the schedule check) while
/// shrinking the DS-TWR distance by ~c*b/4, and moves this residual by
/// exactly +b/2. Together the two checks leave no timestamp-forgery
/// direction unobserved.
Seconds ds_twr_asymmetry_residual_s(const DsTwrTimestamps& ts);

/// A two-node DS-TWR deployment running on the full radio simulation.
struct DsTwrSessionConfig {
  geom::Room room = geom::Room::rectangular(20.0, 10.0);
  channel::ChannelModelParams channel;
  sim::MediumParams medium;
  geom::Vec2 initiator_position{2.0, 5.0};
  geom::Vec2 responder_position{8.0, 5.0};
  dw::PhyConfig phy;
  dw::CirParams cir;
  dw::TimestampModelParams timestamping;
  Seconds response_delay{290e-6};
  double clock_drift_sigma_ppm = 1.0;
  bool delayed_tx_truncation = true;
  std::uint64_t seed = 1;
};

struct DsTwrResult {
  bool ok = false;
  double distance_m = 0.0;
  DsTwrTimestamps timestamps;
};

class DsTwrSession {
 public:
  explicit DsTwrSession(DsTwrSessionConfig config);
  ~DsTwrSession();

  DsTwrSession(const DsTwrSession&) = delete;
  DsTwrSession& operator=(const DsTwrSession&) = delete;

  /// One POLL -> RESP -> FINAL exchange; the distance is computed at the
  /// responder from the timestamps embedded in FINAL.
  DsTwrResult run_round();

  double true_distance() const;
  sim::Node& initiator_node() { return *initiator_; }
  sim::Node& responder_node() { return *responder_; }

 private:
  DsTwrSessionConfig config_;
  Rng rng_;
  sim::Simulator sim_;
  std::unique_ptr<sim::Medium> medium_;
  std::unique_ptr<sim::Node> initiator_;
  std::unique_ptr<sim::Node> responder_;

  // Per-round protocol state.
  DsTwrTimestamps ts_;
  bool final_received_ = false;
};

}  // namespace uwb::ranging
