#include "ranging/threshold_detector.hpp"

#include <algorithm>
#include <cmath>

#include "common/expects.hpp"
#include "dsp/peaks.hpp"
#include "dsp/signal.hpp"
#include "dw1000/pulse.hpp"

namespace uwb::ranging {

namespace detail {
void validate_detector_config(const DetectorConfig& cfg);
CVec upsample_padded(const CVec& cir_taps, int factor);  // search_subtract.cpp
}

ThresholdDetector::ThresholdDetector(DetectorConfig config)
    : config_(std::move(config)) {
  detail::validate_detector_config(config_);
}

std::vector<DetectedResponse> ThresholdDetector::detect(const CVec& cir_taps,
                                                        double ts_s,
                                                        int max_responses) const {
  UWB_EXPECTS(!cir_taps.empty());
  UWB_EXPECTS(max_responses >= 1);
  const double ts_up = ts_s / config_.upsample_factor;
  const CVec up = detail::upsample_padded(cir_taps, config_.upsample_factor);
  const RVec mag = dsp::magnitude(up);
  const double noise = dsp::noise_sigma_estimate(up);
  const double peak = *std::max_element(mag.begin(), mag.end());
  const double threshold =
      std::max(config_.noise_threshold_factor * noise,
               config_.baseline_relative_threshold * peak);

  // Np: the visible pulse duration in upsampled samples. Falsi et al. scan
  // the max over one pulse duration after a crossing; using the main lobe
  // (as the paper's Fig. 5 "pulse") rather than the full ring-out support,
  // which would swallow clearly separated neighbouring responses.
  const auto np = static_cast<std::size_t>(std::ceil(
      2.0 * dw::pulse_main_lobe_s(config_.shape_registers.front()) / ts_up));

  std::vector<DetectedResponse> found;
  std::size_t n = 0;
  while (n < mag.size() && static_cast<int>(found.size()) < max_responses) {
    if (mag[n] < threshold) {
      ++n;
      continue;
    }
    // Crossing: the maximum of the next Np samples is the response.
    const std::size_t end = std::min(mag.size(), n + np);
    std::size_t peak = n;
    for (std::size_t i = n + 1; i < end; ++i)
      if (mag[i] > mag[peak]) peak = i;
    DetectedResponse resp;
    resp.index_upsampled = static_cast<double>(peak);
    resp.tau_s = static_cast<double>(peak) * ts_up;
    resp.amplitude = up[peak];
    found.push_back(resp);
    // Re-arm only once the signal has dropped below the threshold again, so
    // the trailing ring of the detected pulse does not re-trigger.
    n = end;
    while (n < mag.size() && mag[n] >= threshold) ++n;
  }
  return found;  // already in ascending tau order by construction
}

}  // namespace uwb::ranging
