#include "ranging/network.hpp"

#include <algorithm>

#include "common/expects.hpp"
#include "ranging/twr.hpp"

namespace uwb::ranging {

namespace {
DetectorConfig network_detector_config(const ConcurrentRangingConfig& ranging) {
  DetectorConfig det = ranging.detector;
  det.shape_registers = ranging.shape_registers;
  return det;
}
}  // namespace

Status NetworkRangingSession::validate_config(const NetworkConfig& config) {
  const auto invalid = [](std::string message) {
    return Status::error(ErrorCode::kInvalidConfig, std::move(message));
  };
  try {
    config.ranging.validate();
  } catch (const PreconditionError& e) {
    return invalid(e.what());
  }
  if (config.node_positions.size() < 2)
    return invalid("network needs at least 2 nodes, got " +
                   std::to_string(config.node_positions.size()));
  const int responders = static_cast<int>(config.node_positions.size()) - 1;
  if (responders > config.ranging.max_responders())
    return invalid(std::to_string(config.node_positions.size()) +
                   " nodes need " + std::to_string(responders) +
                   " responder ids per round but the slot/shape plan only " +
                   "addresses " +
                   std::to_string(config.ranging.max_responders()));
  return Status::success();
}

Result<std::unique_ptr<NetworkRangingSession>> NetworkRangingSession::create(
    NetworkConfig config) {
  Status status = validate_config(config);
  if (!status.ok()) return status;
  return std::make_unique<NetworkRangingSession>(std::move(config));
}

NetworkRangingSession::NetworkRangingSession(NetworkConfig config)
    : config_(std::move(config)), rng_(config_.seed),
      detector_(network_detector_config(config_.ranging)) {
  config_.ranging.validate();
  UWB_EXPECTS(config_.node_positions.size() >= 2);
  UWB_EXPECTS(static_cast<int>(config_.node_positions.size()) - 1 <=
              config_.ranging.max_responders());

  medium_ = std::make_unique<sim::Medium>(
      sim_, channel::ChannelModel(config_.room, config_.channel),
      config_.medium, rng_.fork());

  for (std::size_t i = 0; i < config_.node_positions.size(); ++i) {
    sim::NodeConfig nc;
    nc.id = static_cast<int>(i);
    nc.position = config_.node_positions[i];
    nc.clock_epoch_offset = SimTime::from_seconds(rng_.uniform(0.0, 17.0));
    nc.drift_ppm = rng_.normal(0.0, config_.clock_drift_sigma_ppm);
    nc.phy = config_.phy;
    nc.cir = config_.cir;
    nc.timestamping = config_.timestamping;
    nc.delayed_tx_truncation = config_.delayed_tx_truncation;
    nodes_.push_back(std::make_unique<sim::Node>(sim_, *medium_, nc, rng_.fork()));
  }
}

NetworkRangingSession::~NetworkRangingSession() = default;

sim::Node& NetworkRangingSession::node(int index) {
  UWB_EXPECTS(index >= 0 && index < node_count());
  return *nodes_[static_cast<std::size_t>(index)];
}

Meters NetworkRangingSession::true_distance(int i, int j) const {
  UWB_EXPECTS(i >= 0 && i < static_cast<int>(config_.node_positions.size()));
  UWB_EXPECTS(j >= 0 && j < static_cast<int>(config_.node_positions.size()));
  return Meters(
      geom::distance(config_.node_positions[static_cast<std::size_t>(i)],
                     config_.node_positions[static_cast<std::size_t>(j)]));
}

int NetworkRangingSession::responder_id_of(int node_index,
                                           int initiator_index) const {
  UWB_EXPECTS(node_index != initiator_index);
  return node_index < initiator_index ? node_index : node_index - 1;
}

int NetworkRangingSession::node_of_responder(int responder_id,
                                             int initiator_index) const {
  return responder_id < initiator_index ? responder_id : responder_id + 1;
}

NetworkRound NetworkRangingSession::run_round(int initiator_index) {
  UWB_EXPECTS(initiator_index >= 0 && initiator_index < node_count());
  current_initiator_ = initiator_index;
  initiator_result_.reset();

  sim::Node& initiator = *nodes_[static_cast<std::size_t>(initiator_index)];
  initiator.set_rx_handler(
      [this](const sim::RxResult& r) { initiator_result_ = r; });

  // Arm every other node as a responder with its per-round identity.
  for (int i = 0; i < node_count(); ++i) {
    if (i == initiator_index) continue;
    sim::Node* responder = nodes_[static_cast<std::size_t>(i)].get();
    const int rid = responder_id_of(i, initiator_index);
    const SlotAssignment a = assign_responder(rid, config_.ranging);
    responder->set_tc_pgdelay(a.shape_register);
    responder->set_rx_handler([this, responder, rid,
                               a](const sim::RxResult& r) {
      if (!r.frame || r.frame->type != dw::FrameType::Init) return;
      const dw::DwTimestamp target = r.rx_timestamp.plus_seconds(
          Seconds(config_.ranging.response_delay_s + a.extra_delay_s));
      const dw::DwTimestamp actual = responder->delayed_tx_time(target);
      dw::MacFrame resp;
      resp.type = dw::FrameType::Resp;
      resp.src = static_cast<std::uint16_t>(responder->id());
      resp.responder_id = static_cast<std::uint8_t>(rid);
      resp.rx_timestamp = r.rx_timestamp;
      resp.tx_timestamp = actual;
      if (!responder->schedule_delayed_tx(resp, actual)) return;
    });
  }

  const SimTime t0 = sim_.now() + SimTime::from_micros(50.0);
  for (int i = 0; i < node_count(); ++i) {
    if (i == initiator_index) continue;
    sim::Node* n = nodes_[static_cast<std::size_t>(i)].get();
    sim_.at(t0, [n]() {
      if (!n->in_rx()) n->enter_rx();
    });
  }

  dw::MacFrame init;
  init.type = dw::FrameType::Init;
  init.src = static_cast<std::uint16_t>(initiator_index);
  const double init_airtime = config_.phy.frame_duration_s(init.payload_bytes());
  const SimTime t_tx = t0 + SimTime::from_micros(20.0);
  sim_.at(t_tx, [this, &initiator, init]() {
    initiator.exit_rx();
    t_tx_init_ = initiator.transmit_now(init);
  });
  sim_.at(t_tx + SimTime::from_seconds(init_airtime) + SimTime::from_micros(5.0),
          [&initiator]() { initiator.enter_rx(); });

  const double max_extra =
      config_.ranging.num_slots > 1
          ? (config_.ranging.num_slots - 1) * config_.ranging.slot_spacing_s
          : 0.0;
  sim_.run_until(t_tx +
                 SimTime::from_seconds(config_.ranging.response_delay_s +
                                       max_extra) +
                 SimTime::from_micros(5000.0));

  NetworkRound round;
  round.initiator = initiator_index;
  round.distances.assign(static_cast<std::size_t>(node_count()), std::nullopt);

  // Leave every responder idle for the next round.
  for (int i = 0; i < node_count(); ++i)
    if (i != initiator_index) nodes_[static_cast<std::size_t>(i)]->exit_rx();

  if (!initiator_result_) {
    initiator.exit_rx();
    return round;
  }
  const sim::RxResult& r = *initiator_result_;
  round.frames_in_batch = r.frames_in_batch;
  if (!r.frame || r.frame->type != dw::FrameType::Resp) return round;
  round.completed = true;

  TwrTimestamps ts;
  ts.t_tx_init = t_tx_init_;
  ts.t_rx_resp = r.frame->rx_timestamp;
  ts.t_tx_resp = r.frame->tx_timestamp;
  ts.t_rx_init = r.rx_timestamp;
  const double d_twr = ss_twr_distance(ts, r.carrier_offset_ppm).value();

  const int max_responses = std::max(
      node_count() - 1,
      config_.slot_aware_selection ? 2 * (node_count() - 1) : 0);
  const auto detections =
      detector_.detect(r.cir.taps, r.cir.ts_s, max_responses);
  const int sync_slot =
      assign_responder(r.frame->responder_id, config_.ranging).slot;
  auto estimates =
      interpret_responses(detections, config_.ranging, d_twr, sync_slot);
  if (config_.slot_aware_selection)
    estimates = select_slot_responses(estimates, config_.ranging);

  for (const ResponderEstimate& est : estimates) {
    if (est.responder_id < 0 || est.responder_id >= node_count() - 1) continue;
    const int node_index = node_of_responder(est.responder_id, initiator_index);
    auto& slot = round.distances[static_cast<std::size_t>(node_index)];
    if (!slot.has_value()) slot = est.distance_m;
  }
  return round;
}

NetworkSweep NetworkRangingSession::run_full_sweep() {
  NetworkSweep sweep;
  const double start_s = sim_.now().seconds();
  sweep.matrix.assign(
      static_cast<std::size_t>(node_count()),
      std::vector<std::optional<double>>(static_cast<std::size_t>(node_count())));
  for (int i = 0; i < node_count(); ++i) {
    const NetworkRound round = run_round(i);
    if (round.completed) ++sweep.completed_rounds;
    sweep.matrix[static_cast<std::size_t>(i)] = round.distances;
  }
  sweep.duration_s = sim_.now().seconds() - start_s;
  for (const auto& n : nodes_) sweep.total_energy_j += n->energy().energy_j();
  return sweep;
}

}  // namespace uwb::ranging
