// Single-sided two-way ranging (paper Sect. III, Eq. 2).
//
// d = c/2 * ((t_rx,init - t_tx,init) - (t_tx,resp - t_rx,resp))
//
// with an optional carrier-frequency-offset correction: the responder's
// reply interval is measured on its own crystal, so the initiator rescales
// it by the estimated relative drift (the standard DW1000 drift-compensation
// technique; without it, ppm-level drift over the 290 us reply time turns
// into decimetre errors).
#pragma once

#include "dw1000/clock.hpp"

namespace uwb::ranging {

struct TwrTimestamps {
  dw::DwTimestamp t_tx_init;  // INIT RMARKER, initiator clock
  dw::DwTimestamp t_rx_resp;  // INIT arrival, responder clock
  dw::DwTimestamp t_tx_resp;  // RESP RMARKER, responder clock
  dw::DwTimestamp t_rx_init;  // RESP arrival, initiator clock
};

/// SS-TWR distance. `cfo_ppm` is the estimated responder-minus-initiator
/// clock drift (0 disables the correction).
Meters ss_twr_distance(const TwrTimestamps& ts, double cfo_ppm = 0.0);

/// Time of flight instead of distance.
Seconds ss_twr_tof(const TwrTimestamps& ts, double cfo_ppm = 0.0);

/// Antenna-delay commissioning (Decawave APS014): with two identical
/// uncalibrated devices a symmetric per-device antenna delay inflates every
/// SS-TWR distance by c * delay. Estimate it from a known-distance link.
Seconds estimate_antenna_delay(Meters measured, Meters true_distance);

/// Remove two (possibly different) calibrated antenna delays from a
/// measured SS-TWR distance.
Meters correct_antenna_delay(Meters measured, Seconds delay_a, Seconds delay_b);

}  // namespace uwb::ranging
