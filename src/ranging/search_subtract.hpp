// Search-and-subtract response detection (paper Sect. IV, after Falsi et al.).
//
// Per iteration: matched-filter the residual with every template of the
// bank, take the global maximum over templates and positions (that template
// is the classified pulse shape, Sect. V), estimate the amplitude from the
// filter output at the peak (the paper's low-complexity replacement for the
// least-squares solve), subtract the estimated response, and repeat until
// the requested number of responses is found or the residual hits the noise
// floor. Detection is amplitude-independent: responses are accepted by rank,
// not by absolute power bounds (open challenge IV).
//
// Two equivalent execution paths (DESIGN.md Sect. 8): the default fast path
// forward-transforms the residual once per iteration and reuses that
// spectrum across the whole template bank (fusing the CIR upsample into the
// first correlation transform), then maintains every template's correlation
// output *incrementally* after each subtraction — a subtraction only
// perturbs a ~2-template-length window, so the update is a short windowed
// correlation instead of K full FFTs. The exact reference path
// (DetectorConfig::exact_recompute, and always used when tracing) re-runs
// every matched filter from scratch per iteration; debug builds assert the
// two paths agree to roundoff.
#pragma once

#include <cstddef>
#include <memory>

#include "ranging/detector.hpp"

namespace uwb::ranging {

class SearchSubtractDetector final : public ResponseDetector {
 public:
  explicit SearchSubtractDetector(DetectorConfig config);
  ~SearchSubtractDetector() override;

  SearchSubtractDetector(SearchSubtractDetector&&) noexcept;
  SearchSubtractDetector& operator=(SearchSubtractDetector&&) noexcept;

  std::vector<DetectedResponse> detect(const CVec& cir_taps, double ts_s,
                                       int max_responses) const override;

  /// Batched detection: push many CIRs (all of the same tap count and sample
  /// period) through one template-bank/plan setup. Results are elementwise
  /// identical to calling detect() per CIR — the batch only restages the
  /// work: per-CIR upsample + forward spectra first, then a template-major
  /// bank-correlation sweep (each template's spectrum stays hot in cache
  /// across the whole chunk), then the per-CIR iterative search. Throughput
  /// (CIRs/sec) is the headline bench metric of this path.
  std::vector<std::vector<DetectedResponse>> detect_batch(
      const std::vector<CVec>& cirs, double ts_s, int max_responses) const;

  /// Per-iteration record of the algorithm for visualisation (Fig. 4):
  /// the matched-filter output of the residual before each subtraction.
  struct DetectionTrace {
    std::vector<DetectedResponse> responses;
    /// |y| of the winning template per iteration (upsampled grid).
    std::vector<CVec> mf_outputs;
    double ts_up = 0.0;
  };

  /// Like detect(), additionally recording the intermediate filter outputs.
  /// Tracing always runs the exact full-recompute path (the trace *is* the
  /// per-iteration filter output of the paper's algorithm).
  DetectionTrace detect_with_trace(const CVec& cir_taps, double ts_s,
                                   int max_responses) const;

  /// Matched-filter output of template `shape_index` over the (upsampled)
  /// CIR — exposed for visualisation benches (paper Fig. 4b/6b).
  CVec matched_filter_output(const CVec& cir_taps, double ts_s,
                             int shape_index) const;

  const DetectorConfig& config() const { return config_; }

  /// Hit/miss counters of the calling thread's template-bank cache.
  struct BankCacheStats {
    std::size_t hits = 0;
    std::size_t misses = 0;
  };
  static BankCacheStats bank_cache_stats();

  /// Process-wide bank-cache counters aggregated over every thread (what
  /// the bench JSON reports; worker-thread caches are invisible to the
  /// main thread otherwise).
  static BankCacheStats bank_cache_stats_total();

  /// Drop the calling thread's cached banks (tests / memory pressure).
  static void clear_bank_cache();

  /// Opaque precomputed template bank (public only so the thread-local
  /// bank cache in the implementation can name it).
  struct TemplateBank;

  /// Opaque per-CIR working set of the fast path (public only so the
  /// thread-local scratch pool in the implementation can name it).
  struct FastState;

 private:
  const TemplateBank& bank_for(double ts_s) const;
  std::vector<DetectedResponse> detect_impl(const CVec& cir_taps, double ts_s,
                                            int max_responses,
                                            DetectionTrace* trace) const;
  std::vector<DetectedResponse> detect_exact(const CVec& cir_taps,
                                             const TemplateBank& bank,
                                             int max_responses,
                                             DetectionTrace* trace) const;
  std::vector<DetectedResponse> detect_fast(const CVec& cir_taps,
                                            const TemplateBank& bank,
                                            int max_responses) const;
  // Stages of the fast path, shared by detect_fast (one CIR straight
  // through) and detect_batch (stage-major over a chunk of CIRs).
  void prepare_residual(const CVec& cir_taps, const TemplateBank& bank,
                        FastState& st) const;
  void bank_correlate(const TemplateBank& bank, FastState& st) const;
  std::vector<DetectedResponse> search_loop(const TemplateBank& bank,
                                            int max_responses,
                                            FastState& st) const;

  DetectorConfig config_;
  // Handle into the thread-local template-bank cache (lazily resolved; all
  // detectors on one thread with the same shape bank and sample period
  // share one bank, so per-trial detector construction in the Monte-Carlo
  // harnesses stops rebuilding templates and filter spectra). Banks are
  // never shared across threads — a detector must only be used on the
  // thread that first called detect() on it, which was already required by
  // the lazily-built matched-filter spectra.
  mutable std::shared_ptr<const TemplateBank> bank_;
};

}  // namespace uwb::ranging
