#include "ranging/session.hpp"

#include <algorithm>

#include "common/constants.hpp"
#include "common/expects.hpp"
#include "obs/obs.hpp"

namespace uwb::ranging {

namespace {
constexpr int kInitiatorId = -1;

DetectorConfig make_detector_config(const ConcurrentRangingConfig& ranging) {
  DetectorConfig det = ranging.detector;
  det.shape_registers = ranging.shape_registers;
  return det;
}
}  // namespace

ConcurrentRangingScenario::ConcurrentRangingScenario(ScenarioConfig config)
    : config_(std::move(config)), rng_(config_.seed),
      detector_(make_detector_config(config_.ranging)) {
  config_.ranging.validate();
  UWB_EXPECTS(!config_.responders.empty());

  medium_ = std::make_unique<sim::Medium>(
      sim_, channel::ChannelModel(config_.room, config_.channel),
      config_.medium, rng_.fork());

  const auto make_node_config = [&](int id, geom::Vec2 pos) {
    sim::NodeConfig nc;
    nc.id = id;
    nc.position = pos;
    nc.clock_epoch_offset =
        SimTime::from_seconds(rng_.uniform(0.0, 17.0));
    nc.drift_ppm = rng_.normal(0.0, config_.clock_drift_sigma_ppm);
    nc.phy = config_.phy;
    nc.cir = config_.cir;
    nc.timestamping = config_.timestamping;
    nc.delayed_tx_truncation = config_.delayed_tx_truncation;
    nc.antenna_delay_s = config_.antenna_delay_s;
    return nc;
  };

  initiator_ = std::make_unique<sim::Node>(
      sim_, *medium_, make_node_config(kInitiatorId, config_.initiator_position),
      rng_.fork());
  initiator_->set_rx_handler(
      [this](const sim::RxResult& r) { initiator_result_ = r; });

  for (const ResponderSpec& spec : config_.responders) {
    UWB_EXPECTS(spec.id >= 0 && spec.id <= 255);
    auto nc = make_node_config(spec.id, spec.position);
    nc.phy.tc_pgdelay =
        assign_responder(spec.id, config_.ranging).shape_register;
    auto node = std::make_unique<sim::Node>(sim_, *medium_, nc, rng_.fork());
    const auto [it, inserted] = responders_.emplace(spec.id, std::move(node));
    UWB_EXPECTS(inserted);
    (void)it;
    arm_responder(spec.id);
  }
}

ConcurrentRangingScenario::~ConcurrentRangingScenario() = default;

sim::Node& ConcurrentRangingScenario::responder_node(int responder_id) {
  const auto it = responders_.find(responder_id);
  UWB_EXPECTS(it != responders_.end());
  return *it->second;
}

double ConcurrentRangingScenario::true_distance(int responder_id) const {
  const auto it = responders_.find(responder_id);
  UWB_EXPECTS(it != responders_.end());
  return geom::distance(config_.initiator_position, it->second->position());
}

void ConcurrentRangingScenario::set_initiator_position(geom::Vec2 position) {
  config_.initiator_position = position;
  initiator_->set_position(position);
}

void ConcurrentRangingScenario::arm_responder(int responder_id) {
  sim::Node& node = *responders_.at(responder_id);
  node.set_rx_handler([this, responder_id, &node](const sim::RxResult& r) {
    if (!r.frame || r.frame->type != dw::FrameType::Init) return;
    const SlotAssignment a =
        assign_responder(responder_id, config_.ranging);
    const dw::DwTimestamp target = r.rx_timestamp.plus_seconds(
        config_.ranging.response_delay_s + a.extra_delay_s);
    const dw::DwTimestamp actual = node.delayed_tx_time(target);

    dw::MacFrame resp;
    resp.type = dw::FrameType::Resp;
    resp.src = static_cast<std::uint16_t>(responder_id);
    resp.responder_id = static_cast<std::uint8_t>(responder_id);
    resp.rx_timestamp = r.rx_timestamp;
    resp.tx_timestamp = actual;
    node.schedule_delayed_tx(resp, actual);

    ResponderTruth truth;
    truth.id = responder_id;
    truth.true_distance_m = true_distance(responder_id);
    truth.resp_tx_rmarker = node.clock().global_time_of(actual, sim_.now());
    truth.resp_arrival =
        truth.resp_tx_rmarker +
        SimTime::from_seconds(truth.true_distance_m / k::c_air);
    truths_.push_back(truth);
  });
}

RoundOutcome ConcurrentRangingScenario::run_round() {
  UWB_OBS_SPAN("session_round");
  initiator_result_.reset();
  truths_.clear();

  const SimTime t0 = sim_.now() + SimTime::from_micros(50.0);
  for (auto& [id, node] : responders_) {
    sim::Node* n = node.get();
    sim_.at(t0, [n]() {
      if (!n->in_rx()) n->enter_rx();
    });
  }

  dw::MacFrame init;
  init.type = dw::FrameType::Init;
  const double init_airtime =
      config_.phy.frame_duration_s(init.payload_bytes());

  const SimTime t_tx = t0 + SimTime::from_micros(20.0);
  sim_.at(t_tx, [this, init]() {
    initiator_->exit_rx();
    t_tx_init_ = initiator_->transmit_now(init);
  });
  sim_.at(t_tx + SimTime::from_seconds(init_airtime) + SimTime::from_micros(5.0),
          [this]() { initiator_->enter_rx(); });

  const double max_extra =
      config_.ranging.num_slots > 1
          ? (config_.ranging.num_slots - 1) * config_.ranging.slot_spacing_s
          : 0.0;
  const SimTime deadline =
      t_tx + SimTime::from_seconds(config_.ranging.response_delay_s +
                                   max_extra) +
      SimTime::from_micros(5000.0);
  sim_.run_until(deadline);

  RoundOutcome out;
  std::sort(truths_.begin(), truths_.end(),
            [](const ResponderTruth& a, const ResponderTruth& b) {
              return a.resp_arrival < b.resp_arrival;
            });
  out.truths = truths_;

  if (!initiator_result_) {
    initiator_->exit_rx();
    return out;
  }
  const sim::RxResult& r = *initiator_result_;
  out.completed = true;
  out.cir = r.cir;
  out.frames_in_batch = r.frames_in_batch;

  if (!r.frame || r.frame->type != dw::FrameType::Resp) return out;
  out.payload_decoded = true;
  out.sync_responder_id = r.frame->responder_id;

  TwrTimestamps ts;
  ts.t_tx_init = t_tx_init_;
  ts.t_rx_resp = r.frame->rx_timestamp;
  ts.t_tx_resp = r.frame->tx_timestamp;
  ts.t_rx_init = r.rx_timestamp;
  out.d_twr_m = ss_twr_distance(
      ts, config_.cfo_correction ? r.carrier_offset_ppm : 0.0);

  const int max_responses = config_.detect_max_responses > 0
                                ? config_.detect_max_responses
                                : static_cast<int>(responders_.size());
  {
    UWB_OBS_SPAN("detect");
    out.detections = detector_.detect(r.cir.taps, r.cir.ts_s, max_responses);
  }
  const int sync_slot =
      assign_responder(out.sync_responder_id, config_.ranging).slot;
  {
    UWB_OBS_SPAN("interpret_responses");
    out.estimates = interpret_responses(out.detections, config_.ranging,
                                        out.d_twr_m, sync_slot);
  }
  if (config_.slot_aware_selection)
    out.estimates = select_slot_responses(out.estimates, config_.ranging);
  return out;
}

}  // namespace uwb::ranging
