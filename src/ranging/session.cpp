#include "ranging/session.hpp"

#include <algorithm>
#include <cmath>

#include "common/constants.hpp"
#include "common/expects.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/obs.hpp"
#include "ranging/twr.hpp"

namespace uwb::ranging {

namespace {
constexpr int kInitiatorId = -1;
/// derive_seed stream tag separating the fault injector's RNG streams from
/// every simulation stream (which fork from Rng(config.seed) directly).
constexpr std::uint64_t kFaultSeedStream = 0xFA170001u;
/// Stream tag of the attack injector: disjoint from the fault and
/// simulation streams so an attack plan perturbs neither.
constexpr std::uint64_t kAttackSeedStream = 0xA77AC001u;

DetectorConfig make_detector_config(const ConcurrentRangingConfig& ranging) {
  DetectorConfig det = ranging.detector;
  det.shape_registers = ranging.shape_registers;
  return det;
}
}  // namespace

const char* to_string(RangingStatus status) {
  switch (status) {
    case RangingStatus::kOk: return "ok";
    case RangingStatus::kNoPreamble: return "no_preamble";
    case RangingStatus::kCrcError: return "crc_error";
    case RangingStatus::kLateTxAbort: return "late_tx_abort";
    case RangingStatus::kTimedOut: return "timed_out";
    case RangingStatus::kSuspect: return "suspect";
  }
  return "unknown";
}

void ResilienceConfig::validate() const {
  UWB_EXPECTS(max_retries >= 0);
  UWB_EXPECTS(retry_backoff > Seconds(0.0));
  UWB_EXPECTS(backoff_factor >= 1.0);
  UWB_EXPECTS(rx_extra_listen > Seconds(0.0));
}

Status ConcurrentRangingScenario::validate_config(const ScenarioConfig& config) {
  const auto invalid = [](std::string message) {
    return Status::error(ErrorCode::kInvalidConfig, std::move(message));
  };
  try {
    config.ranging.validate();
    config.resilience.validate();
    config.fault.validate();
    config.attack.validate();
    config.attack_detector.validate();
  } catch (const PreconditionError& e) {
    return invalid(e.what());
  }
  if (config.responders.empty()) return invalid("no responders configured");
  std::set<int> ids;
  for (const ResponderSpec& spec : config.responders) {
    if (spec.id < 0 || spec.id > 255)
      return invalid("responder id " + std::to_string(spec.id) +
                     " outside [0, 255]");
    if (spec.id >= config.ranging.max_responders())
      return invalid("responder id " + std::to_string(spec.id) +
                     " exceeds the " +
                     std::to_string(config.ranging.max_responders()) +
                     " addressable ids of " +
                     std::to_string(config.ranging.num_slots) + " slots x " +
                     std::to_string(config.ranging.num_pulse_shapes()) +
                     " pulse shapes");
    if (!ids.insert(spec.id).second)
      return invalid("duplicate responder id " + std::to_string(spec.id));
  }
  // A compromised node must exist to be compromised: every attacker id has
  // to name a configured responder.
  for (const fault::AttackSpec& spec : config.attack.specs)
    if (ids.count(spec.attacker_id) == 0)
      return invalid("attacker id " + std::to_string(spec.attacker_id) +
                     " is not a configured responder");
  return Status::success();
}

Result<std::unique_ptr<ConcurrentRangingScenario>>
ConcurrentRangingScenario::create(ScenarioConfig config) {
  Status status = validate_config(config);
  if (!status.ok()) return status;
  return std::make_unique<ConcurrentRangingScenario>(std::move(config));
}

ConcurrentRangingScenario::ConcurrentRangingScenario(ScenarioConfig config)
    : config_(std::move(config)), rng_(config_.seed),
      detector_(make_detector_config(config_.ranging)) {
  config_.ranging.validate();
  config_.resilience.validate();
  UWB_EXPECTS(!config_.responders.empty());

  medium_ = std::make_unique<sim::Medium>(
      sim_, channel::ChannelModel(config_.room, config_.channel),
      config_.medium, rng_.fork());

  // The injector never touches rng_: its streams derive from the scenario
  // seed through an independent splitmix64 stream, so an inert plan leaves
  // every simulation draw — and therefore every result — byte-identical.
  if (config_.fault.active()) {
    injector_ = std::make_unique<fault::FaultInjector>(
        config_.fault, derive_seed(config_.seed, kFaultSeedStream));
    medium_->set_fault_injector(injector_.get());
  }

  // Same contract as the fault injector: attack streams derive from the
  // scenario seed through a disjoint tag, so an inert plan (and the inert
  // default) stays byte-identical — including every CIR tap.
  if (config_.attack.active()) {
    attacker_ = std::make_unique<fault::AttackInjector>(
        config_.attack, derive_seed(config_.seed, kAttackSeedStream));
    medium_->set_attack_injector(attacker_.get());
  }
  if (config_.attack_detector.enabled)
    attack_detector_ = std::make_unique<AttackDetector>(config_.attack_detector);
  for (const ResponderSpec& spec : config_.responders)
    configured_ids_.insert(spec.id);

  const auto make_node_config = [&](int id, geom::Vec2 pos) {
    sim::NodeConfig nc;
    nc.id = id;
    nc.position = pos;
    nc.clock_epoch_offset =
        SimTime::from_seconds(rng_.uniform(0.0, 17.0));
    nc.drift_ppm = rng_.normal(0.0, config_.clock_drift_sigma_ppm);
    nc.phy = config_.phy;
    nc.cir = config_.cir;
    nc.timestamping = config_.timestamping;
    nc.delayed_tx_truncation = config_.delayed_tx_truncation;
    nc.antenna_delay = config_.antenna_delay;
    return nc;
  };

  initiator_ = std::make_unique<sim::Node>(
      sim_, *medium_, make_node_config(kInitiatorId, config_.initiator_position),
      rng_.fork());
  initiator_->set_rx_handler(
      [this](const sim::RxResult& r) { initiator_result_ = r; });

  for (const ResponderSpec& spec : config_.responders) {
    UWB_EXPECTS(spec.id >= 0 && spec.id <= 255);
    auto nc = make_node_config(spec.id, spec.position);
    nc.phy.tc_pgdelay =
        assign_responder(spec.id, config_.ranging).shape_register;
    auto node = std::make_unique<sim::Node>(sim_, *medium_, nc, rng_.fork());
    const auto [it, inserted] = responders_.emplace(spec.id, std::move(node));
    UWB_EXPECTS(inserted);
    (void)it;
    arm_responder(spec.id);
  }
}

ConcurrentRangingScenario::~ConcurrentRangingScenario() = default;

sim::Node& ConcurrentRangingScenario::responder_node(int responder_id) {
  const auto it = responders_.find(responder_id);
  UWB_EXPECTS(it != responders_.end());
  return *it->second;
}

Meters ConcurrentRangingScenario::true_distance(int responder_id) const {
  const auto it = responders_.find(responder_id);
  UWB_EXPECTS(it != responders_.end());
  return Meters(
      geom::distance(config_.initiator_position, it->second->position()));
}

void ConcurrentRangingScenario::set_initiator_position(geom::Vec2 position) {
  config_.initiator_position = position;
  initiator_->set_position(position);
}

void ConcurrentRangingScenario::arm_responder(int responder_id) {
  sim::Node& node = *responders_.at(responder_id);
  node.set_rx_handler([this, responder_id, &node](const sim::RxResult& r) {
    if (!r.frame || r.frame->type != dw::FrameType::Init) return;
    const SlotAssignment a =
        assign_responder(responder_id, config_.ranging);
    // Injected MCU scheduling jitter perturbs the programmed reply delay
    // before the hardware quantisation, like a slow interrupt handler would.
    const double jitter_s =
        injector_ != nullptr ? injector_->reply_jitter_s(responder_id) : 0.0;
    const dw::DwTimestamp target = r.rx_timestamp.plus_seconds(Seconds(
        config_.ranging.response_delay_s + a.extra_delay_s + jitter_s));
    const dw::DwTimestamp actual = node.delayed_tx_time(target);

    dw::MacFrame resp;
    resp.type = dw::FrameType::Resp;
    resp.src = static_cast<std::uint16_t>(responder_id);
    resp.responder_id = static_cast<std::uint8_t>(responder_id);
    resp.rx_timestamp = r.rx_timestamp;
    resp.tx_timestamp = actual;
    if (attacker_ != nullptr) {
      // Clock-skew attack: a compromised responder reports a forged TX
      // timestamp. Only the *payload* lies — the frame still leaves the
      // antenna at `actual`, so truths and arrivals are untouched.
      const double bias_s = attacker_->reply_timestamp_bias_s(responder_id);
      if (bias_s != 0.0)
        resp.tx_timestamp = actual.plus_seconds(Seconds(bias_s));
    }
    if (!node.schedule_delayed_tx(resp, actual)) {
      // HPDWARN late abort (natural or injected): no frame leaves the
      // antenna; the round degrades instead of the run aborting.
      late_aborted_.insert(responder_id);
      return;
    }

    ResponderTruth truth;
    truth.id = responder_id;
    truth.true_distance_m = true_distance(responder_id).value();
    truth.resp_tx_rmarker = node.clock().global_time_of(actual, sim_.now());
    truth.resp_arrival =
        truth.resp_tx_rmarker +
        to_sim_time(tof_from_distance(Meters(truth.true_distance_m)));
    truths_.push_back(truth);
  });
}

RoundOutcome ConcurrentRangingScenario::run_round() {
  UWB_OBS_SPAN("session_round");
  // Every event recorded while this round runs carries (scenario seed,
  // round index); the context clock starts at the current simulated time
  // and follows the simulator's dispatch loop from there.
  UWB_FR_SESSION_SCOPE(config_.seed, static_cast<std::uint32_t>(stats_.rounds));
  UWB_FR_SET_TIME(sim_.now());
  const int max_attempts = 1 + config_.resilience.max_retries;
  RoundOutcome out;
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    if (attempt > 1) {
      // Deterministic exponential backoff in simulated time before the
      // next attempt: backoff * factor^(k-1) for retry k.
      const Seconds backoff =
          config_.resilience.retry_backoff *
          std::pow(config_.resilience.backoff_factor, attempt - 2);
      sim_.run_until(sim_.now() + to_sim_time(backoff));
      ++stats_.retry_attempts;
      UWB_OBS_COUNT("session_retry_attempts", 1);
    }
    UWB_FR_EVENT(.kind = obs::FrKind::kStatus, .name = "attempt_begin",
                 .node = kInitiatorId,
                 .v0 = {"attempt", static_cast<double>(attempt)});
    out = run_attempt();
    out.attempts = attempt;
    if (out.payload_decoded) break;
  }

  fill_reports(out);
  if (UWB_FR_ACTIVE()) {
    // Terminal event of every responder's chain this round: the status the
    // caller sees. explain_session.py anchors its narratives here.
    for (const ResponderReport& rep : out.responder_reports) {
      UWB_FR_EVENT(.kind = obs::FrKind::kStatus, .name = "responder_status",
                   .node = rep.id, .peer = kInitiatorId,
                   .detail = to_string(rep.status),
                   .v0 = {"attempts", static_cast<double>(out.attempts)});
    }
    UWB_FR_EVENT(.kind = obs::FrKind::kStatus, .name = "round_summary",
                 .chain = initiator_result_ ? initiator_result_->sync_chain
                                            : std::uint64_t{0},
                 .node = kInitiatorId,
                 .peer = out.payload_decoded ? out.sync_responder_id
                                             : obs::kFrNoNode,
                 .detail = out.payload_decoded  ? "decoded"
                           : out.completed      ? "no_payload"
                                                : "no_batch",
                 .v0 = {"d_twr_m", out.d_twr_m},
                 .v1 = {"frames_in_batch",
                        static_cast<double>(out.frames_in_batch)},
                 .v2 = {"attempts", static_cast<double>(out.attempts)});
  }
  ++stats_.rounds;
  const auto suspects = static_cast<std::uint64_t>(
      std::count_if(out.responder_reports.begin(), out.responder_reports.end(),
                    [](const ResponderReport& r) {
                      return r.status == RangingStatus::kSuspect;
                    }));
  if (suspects > 0) {
    stats_.suspect_reports += suspects;
    ++stats_.suspect_rounds;
    UWB_OBS_COUNT("session_suspect_reports", suspects);
  }
  if (out.degraded) {
    ++stats_.degraded_rounds;
    UWB_OBS_COUNT("session_degraded_rounds", 1);
  }
  if (!out.payload_decoded) {
    ++stats_.failed_rounds;
    UWB_OBS_COUNT("session_failed_rounds", 1);
  }
  return out;
}

RoundOutcome ConcurrentRangingScenario::run_attempt() {
  initiator_result_.reset();
  truths_.clear();
  muted_.clear();
  late_aborted_.clear();

  if (attacker_ != nullptr) attacker_->begin_round();
  if (injector_ != nullptr) {
    injector_->begin_round();
    // Clock anomalies strike at round boundaries: drift steps perturb the
    // CFO/Eq. 2 correction, epoch jumps exercise the wrap-aware timestamp
    // arithmetic. Initiator first, then responders in ascending id order
    // (deterministic draw order).
    const auto apply_glitch = [this](int id, sim::Node& node) {
      const fault::FaultInjector::ClockGlitch g = injector_->clock_glitch(id);
      if (g.drift_step_ppm != 0.0 || g.epoch_jump_s != 0.0)
        node.apply_clock_glitch(g.drift_step_ppm, g.epoch_jump_s);
    };
    apply_glitch(kInitiatorId, *initiator_);
    for (auto& [id, node] : responders_) {
      apply_glitch(id, *node);
      if (injector_->responder_muted(id)) muted_.insert(id);
    }
  }

  const SimTime t0 = sim_.now() + SimTime::from_micros(50.0);
  for (auto& [id, node] : responders_) {
    sim::Node* n = node.get();
    if (muted_.count(id) != 0) {
      // Mute window: the radio is off for the whole round.
      sim_.at(t0, [n]() {
        if (n->in_rx()) n->exit_rx();
      });
      continue;
    }
    sim_.at(t0, [n]() {
      if (!n->in_rx()) n->enter_rx();
    });
  }

  dw::MacFrame init;
  init.type = dw::FrameType::Init;
  const double init_airtime =
      config_.phy.frame_duration_s(init.payload_bytes());

  const SimTime t_tx = t0 + SimTime::from_micros(20.0);
  sim_.at(t_tx, [this, init]() {
    initiator_->exit_rx();
    t_tx_init_ = initiator_->transmit_now(init);
  });
  sim_.at(t_tx + SimTime::from_seconds(init_airtime) + SimTime::from_micros(5.0),
          [this]() { initiator_->enter_rx(); });

  const double max_extra =
      config_.ranging.num_slots > 1
          ? (config_.ranging.num_slots - 1) * config_.ranging.slot_spacing_s
          : 0.0;
  // Kept as a separate SimTime conversion (not folded into the double sum):
  // with the default rx_extra_listen this reproduces the historical
  // deadline bit for bit, so zero-fault runs stay byte-identical.
  const SimTime deadline =
      t_tx + SimTime::from_seconds(config_.ranging.response_delay_s +
                                   max_extra) +
      to_sim_time(config_.resilience.rx_extra_listen);
  sim_.run_until(deadline);

  RoundOutcome out;
  std::sort(truths_.begin(), truths_.end(),
            [](const ResponderTruth& a, const ResponderTruth& b) {
              return a.resp_arrival < b.resp_arrival;
            });
  out.truths = truths_;

  if (!initiator_result_) {
    initiator_->exit_rx();
    return out;
  }
  const sim::RxResult& r = *initiator_result_;
  out.completed = true;
  out.cir = r.cir;
  out.frames_in_batch = r.frames_in_batch;
  out.crc_error = r.crc_error;

  if (!r.frame || r.frame->type != dw::FrameType::Resp) return out;
  out.payload_decoded = true;
  out.sync_responder_id = r.frame->responder_id;

  // TWR math and CIR detection below are consequences of the sync frame's
  // reception — their events belong to its chain.
  UWB_FR_CHAIN_SCOPE(r.sync_chain);

  TwrTimestamps ts;
  ts.t_tx_init = t_tx_init_;
  ts.t_rx_resp = r.frame->rx_timestamp;
  ts.t_tx_resp = r.frame->tx_timestamp;
  ts.t_rx_init = r.rx_timestamp;
  out.d_twr_m = ss_twr_distance(
                    ts, config_.cfo_correction ? r.carrier_offset_ppm : 0.0)
                    .value();

  const int max_responses = config_.detect_max_responses > 0
                                ? config_.detect_max_responses
                                : static_cast<int>(responders_.size());
  {
    UWB_OBS_SPAN("detect");
    out.detections = detector_.detect(r.cir.taps, r.cir.ts_s, max_responses);
  }
  const int sync_slot =
      assign_responder(out.sync_responder_id, config_.ranging).slot;
  {
    UWB_OBS_SPAN("interpret_responses");
    out.estimates = interpret_responses(out.detections, config_.ranging,
                                        out.d_twr_m, sync_slot);
  }
  if (attack_detector_ != nullptr) {
    // Cross-check the round before slot-aware selection collapses the
    // estimates: the detector needs the uncollapsed 1:1 detection/estimate
    // pairing. Runs inside the sync chain scope, so verdict events land on
    // the chain explain_session.py walks for this round.
    UWB_OBS_SPAN("attack_detect");
    RoundView view;
    view.cfo_ppm = r.carrier_offset_ppm;
    view.reply_s = ts.t_tx_resp.diff_seconds(ts.t_rx_resp).value();
    view.programmed_reply_s =
        config_.ranging.response_delay_s +
        assign_responder(out.sync_responder_id, config_.ranging).extra_delay_s;
    view.sync_responder_id = out.sync_responder_id;
    view.cir = &out.cir;
    view.detections = &out.detections;
    view.estimates = &out.estimates;
    view.ranging = &config_.ranging;
    view.configured_ids = &configured_ids_;
    out.verdicts = attack_detector_->detect(view);
  }
  if (config_.slot_aware_selection)
    out.estimates = select_slot_responses(out.estimates, config_.ranging);
  return out;
}

void ConcurrentRangingScenario::fill_reports(RoundOutcome& out) const {
  out.responder_reports.clear();
  out.responder_reports.reserve(responders_.size());

  const auto transmitted = [&out](int id) {
    return std::any_of(out.truths.begin(), out.truths.end(),
                       [id](const ResponderTruth& t) { return t.id == id; });
  };
  const auto in_batch = [this](int id) {
    if (!initiator_result_) return false;
    const auto& ids = initiator_result_->batch_tx_node_ids;
    return std::find(ids.begin(), ids.end(), id) != ids.end();
  };

  for (const auto& [id, node] : responders_) {
    (void)node;
    ResponderReport rep;
    rep.id = id;
    if (muted_.count(id) != 0) {
      rep.status = RangingStatus::kTimedOut;  // radio off: silence, timeout
    } else if (late_aborted_.count(id) != 0) {
      rep.status = RangingStatus::kLateTxAbort;
    } else if (!transmitted(id)) {
      rep.status = RangingStatus::kNoPreamble;  // missed the INIT preamble
    } else if (!out.completed) {
      rep.status = RangingStatus::kTimedOut;  // initiator RX window expired
    } else if (!in_batch(id)) {
      rep.status = RangingStatus::kNoPreamble;  // RESP lost at the initiator
    } else if (!out.payload_decoded) {
      rep.status = RangingStatus::kCrcError;  // sync payload corrupted
    } else if (std::any_of(out.verdicts.begin(), out.verdicts.end(),
                           [id = id](const AttackVerdict& v) {
                             return v.responder_id == id;
                           })) {
      rep.status = RangingStatus::kSuspect;  // indicted by a detector check
    } else {
      rep.status = RangingStatus::kOk;
    }
    out.responder_reports.push_back(rep);
  }

  out.degraded =
      out.payload_decoded &&
      std::any_of(out.responder_reports.begin(), out.responder_reports.end(),
                  [](const ResponderReport& r) {
                    return r.status != RangingStatus::kOk;
                  });
}

}  // namespace uwb::ranging
