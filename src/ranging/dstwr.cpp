#include "ranging/dstwr.hpp"

#include "common/expects.hpp"

namespace uwb::ranging {

Seconds ds_twr_tof(const DsTwrTimestamps& ts) {
  const double ra = ts.t_rx_resp.diff_seconds(ts.t_tx_poll).value();
  const double da = ts.t_tx_final.diff_seconds(ts.t_rx_resp).value();
  const double rb = ts.t_rx_final.diff_seconds(ts.t_tx_resp).value();
  const double db = ts.t_tx_resp.diff_seconds(ts.t_rx_poll).value();
  UWB_EXPECTS(ra > 0.0 && da > 0.0 && rb > 0.0 && db > 0.0);
  // The products of intervals are not themselves durations, so this formula
  // runs on raw values and re-enters the unit system at the end.
  return Seconds((ra * rb - da * db) / (ra + rb + da + db));
}

Meters ds_twr_distance(const DsTwrTimestamps& ts) {
  return distance_from_tof(ds_twr_tof(ts));
}

Seconds ds_twr_asymmetry_residual_s(const DsTwrTimestamps& ts) {
  const double ra = ts.t_rx_resp.diff_seconds(ts.t_tx_poll).value();
  const double da = ts.t_tx_final.diff_seconds(ts.t_rx_resp).value();
  const double rb = ts.t_rx_final.diff_seconds(ts.t_tx_resp).value();
  const double db = ts.t_tx_resp.diff_seconds(ts.t_rx_poll).value();
  return Seconds((ra - db) / 2.0 - (rb - da) / 2.0);
}

DsTwrSession::DsTwrSession(DsTwrSessionConfig config)
    : config_(std::move(config)), rng_(config_.seed) {
  UWB_EXPECTS(config_.response_delay > Seconds(0.0));
  medium_ = std::make_unique<sim::Medium>(
      sim_, channel::ChannelModel(config_.room, config_.channel),
      config_.medium, rng_.fork());

  const auto make_node = [&](int id, geom::Vec2 pos) {
    sim::NodeConfig nc;
    nc.id = id;
    nc.position = pos;
    nc.clock_epoch_offset = SimTime::from_seconds(rng_.uniform(0.0, 17.0));
    nc.drift_ppm = rng_.normal(0.0, config_.clock_drift_sigma_ppm);
    nc.phy = config_.phy;
    nc.cir = config_.cir;
    nc.timestamping = config_.timestamping;
    nc.delayed_tx_truncation = config_.delayed_tx_truncation;
    return std::make_unique<sim::Node>(sim_, *medium_, nc, rng_.fork());
  };
  initiator_ = make_node(0, config_.initiator_position);
  responder_ = make_node(1, config_.responder_position);

  // Responder: answer POLL with a delayed RESP, then listen for FINAL and
  // close the exchange.
  responder_->set_rx_handler([this](const sim::RxResult& r) {
    if (!r.frame) return;
    if (r.frame->type == dw::FrameType::Init) {
      ts_.t_rx_poll = r.rx_timestamp;
      const dw::DwTimestamp target =
          r.rx_timestamp.plus_seconds(config_.response_delay);
      const dw::DwTimestamp actual = responder_->delayed_tx_time(target);
      ts_.t_tx_resp = actual;
      dw::MacFrame resp;
      resp.type = dw::FrameType::Resp;
      resp.src = 1;
      resp.rx_timestamp = ts_.t_rx_poll;
      resp.tx_timestamp = actual;
      if (!responder_->schedule_delayed_tx(resp, actual)) return;
      // Re-enter RX once the RESP is fully transmitted, in time for the
      // FINAL. The RMARKER sits after the SHR, so the frame ends RMARKER +
      // (PHR + payload) later.
      const SimTime resp_end =
          responder_->clock().global_time_of(actual, sim_.now()) +
          SimTime::from_seconds(
              config_.phy.frame_duration_s(resp.payload_bytes()) -
              config_.phy.shr_duration_s());
      sim_.at(resp_end + SimTime::from_micros(5.0), [this]() {
        if (!responder_->in_rx()) responder_->enter_rx();
      });
      return;
    }
    if (r.frame->type == dw::FrameType::Final) {
      ts_.t_rx_final = r.rx_timestamp;
      ts_.t_rx_resp = r.frame->rx_timestamp;
      ts_.t_tx_final = r.frame->tx_timestamp;
      ts_.t_tx_poll = r.frame->aux_timestamp;
      final_received_ = true;
    }
  });

  // Initiator: on RESP, send the FINAL with all initiator-side timestamps.
  initiator_->set_rx_handler([this](const sim::RxResult& r) {
    if (!r.frame || r.frame->type != dw::FrameType::Resp) return;
    const dw::DwTimestamp t_rx_resp = r.rx_timestamp;
    const dw::DwTimestamp target =
        t_rx_resp.plus_seconds(config_.response_delay);
    const dw::DwTimestamp actual = initiator_->delayed_tx_time(target);
    dw::MacFrame fin;
    fin.type = dw::FrameType::Final;
    fin.src = 0;
    fin.rx_timestamp = t_rx_resp;
    fin.tx_timestamp = actual;
    fin.aux_timestamp = ts_.t_tx_poll;
    if (!initiator_->schedule_delayed_tx(fin, actual)) return;
  });
}

DsTwrSession::~DsTwrSession() = default;

double DsTwrSession::true_distance() const {
  return geom::distance(config_.initiator_position, config_.responder_position);
}

DsTwrResult DsTwrSession::run_round() {
  final_received_ = false;
  ts_ = DsTwrTimestamps{};

  const SimTime t0 = sim_.now() + SimTime::from_micros(50.0);
  sim_.at(t0, [this]() {
    if (!responder_->in_rx()) responder_->enter_rx();
  });

  dw::MacFrame poll;
  poll.type = dw::FrameType::Init;
  const double poll_airtime =
      config_.phy.frame_duration_s(poll.payload_bytes());
  sim_.at(t0 + SimTime::from_micros(20.0), [this, poll]() {
    initiator_->exit_rx();
    ts_.t_tx_poll = initiator_->transmit_now(poll);
  });
  sim_.at(t0 + SimTime::from_micros(20.0) + SimTime::from_seconds(poll_airtime) +
              SimTime::from_micros(5.0),
          [this]() { initiator_->enter_rx(); });

  // POLL + RESP + FINAL: two response delays plus three frame airtimes.
  const SimTime deadline =
      t0 + to_sim_time(config_.response_delay * 2.0) +
      SimTime::from_micros(2000.0);
  sim_.run_until(deadline);

  DsTwrResult result;
  initiator_->exit_rx();
  responder_->exit_rx();
  if (!final_received_) return result;
  result.ok = true;
  result.timestamps = ts_;
  result.distance_m = ds_twr_distance(ts_).value();
  return result;
}

}  // namespace uwb::ranging
