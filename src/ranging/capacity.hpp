// Scalability analysis of the combined scheme (paper Sect. III & VIII):
// slot capacity of the CIR, maximum concurrent responders, message counts,
// and per-round energy compared against scheduled SS-TWR.
#pragma once

#include <cstdint>
#include <vector>

#include "dw1000/energy.hpp"
#include "dw1000/phy_config.hpp"

namespace uwb::ranging {

/// Maximum usable response offset delta_max [s]: the CIR span
/// (1016 taps * 1.0016 ns ~= 1017 ns for PRF 64).
double cir_max_offset_s(const dw::PhyConfig& phy);

/// Paper Sect. VIII: number of RPM slots N_RPM = delta_max * c / r_max
/// (slot width equal to the communication range in distance units).
int rpm_slots_paper(const dw::PhyConfig& phy, double max_range_m);

/// Aliasing-free slot count: responses traverse INIT and RESP legs, so the
/// in-slot spread is up to 2*r_max/c and guaranteed-unambiguous slotting
/// halves the paper's figure (see DESIGN.md).
int rpm_slots_aliasing_free(const dw::PhyConfig& phy, double max_range_m);

/// N_max = N_RPM * N_PS.
int max_concurrent_responders(int num_slots, int num_pulse_shapes);

/// Messages to estimate the distance between all N nodes pairwise with
/// SS-TWR: N * (N - 1).
std::int64_t twr_message_count(int num_nodes);

/// Messages for every node to range to all others with concurrent ranging:
/// one broadcast per node, N in total.
std::int64_t concurrent_message_count(int num_nodes);

/// Radio-on energy of one ranging *round* (one initiator measuring all
/// N-1 neighbours).
struct RoundCost {
  double initiator_j = 0.0;
  double per_responder_j = 0.0;
  double network_j = 0.0;
  int initiator_messages = 0;  // TX + RX operations at the initiator
};

/// A deployment plan for the combined RPM x pulse-shaping scheme.
struct RpmPlan {
  bool feasible = false;
  int num_slots = 1;
  double slot_spacing_s = 0.0;
  int num_pulse_shapes = 1;
  /// Evenly spread TC_PGDELAY values for the chosen shape count.
  std::vector<std::uint8_t> shape_registers;
  /// num_slots * num_pulse_shapes.
  int capacity = 0;
};

/// Choose slots, spacing, and pulse shapes for a deployment: the slot width
/// covers the aliasing-free worst case (round-trip range spread plus the
/// channel delay spread), the CIR span bounds the slot count, and the shape
/// count covers `responders` within the slot budget.
RpmPlan plan_rpm(const dw::PhyConfig& phy, double max_range_m,
                 double delay_spread_s, int responders);

/// SS-TWR: the initiator runs N-1 sequential exchanges.
RoundCost twr_round_cost(int num_neighbors, const dw::PhyConfig& phy,
                         double response_delay_s,
                         const dw::EnergyModelParams& energy);

/// Concurrent ranging: one broadcast, one aggregated reception.
RoundCost concurrent_round_cost(int num_neighbors, const dw::PhyConfig& phy,
                                double response_delay_s,
                                const dw::EnergyModelParams& energy);

}  // namespace uwb::ranging
