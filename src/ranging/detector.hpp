// Response detection interface (paper Sect. IV / VI).
//
// A detector takes the superposed CIR of a concurrent-ranging round and
// extracts the responses of the individual responders: their path delays,
// amplitudes, and — when a pulse-shape bank is configured (Sect. V) — the
// index of the pulse shape each responder transmitted with.
#pragma once

#include <cstdint>
#include <vector>

#include "common/constants.hpp"
#include "common/types.hpp"

namespace uwb::ranging {

/// One extracted responder response.
struct DetectedResponse {
  /// Peak time relative to the start of the CIR window [s].
  double tau_s = 0.0;
  /// Peak position on the upsampled grid (tau_s / (Ts / upsample_factor)).
  double index_upsampled = 0.0;
  /// Complex amplitude estimate in CIR units.
  Complex amplitude;
  /// Index into DetectorConfig::shape_registers of the best-matching pulse
  /// template; -1 when the detector does not classify shapes.
  int shape_index = -1;
};

struct DetectorConfig {
  /// FFT upsampling factor applied to the CIR (Sect. IV step 1).
  int upsample_factor = 8;
  /// Pulse template bank: TC_PGDELAY values (Sect. V). One entry = plain
  /// detection; multiple entries = joint detection + shape classification.
  std::vector<std::uint8_t> shape_registers{k::tc_pgdelay_default};
  /// Stop when the next peak falls below this multiple of the noise sigma.
  double noise_threshold_factor = 5.0;
  /// ... or below this fraction of the strongest detected peak. The
  /// amplitude-independence requirement (open challenge IV) means this must
  /// stay small; it only rejects pure noise, never weak responders.
  double relative_stop_fraction = 0.02;
  /// Threshold-baseline only: the scan threshold as a fraction of the
  /// strongest CIR tap (combined with the noise floor). This is precisely
  /// the amplitude dependence that makes the baseline fragile (challenge
  /// IV); search-and-subtract ignores it.
  double baseline_relative_threshold = 0.3;
  /// Search-and-subtract only: force the exact reference path that
  /// re-runs every matched filter from scratch each iteration, instead of
  /// the shared-spectrum + incremental-update fast path. The two paths
  /// agree to floating-point roundoff (asserted in debug builds); the flag
  /// exists as a fallback and for equivalence testing.
  bool exact_recompute = false;
};

/// Common interface so benches can swap search-and-subtract against the
/// threshold baseline on identical CIRs.
class ResponseDetector {
 public:
  virtual ~ResponseDetector() = default;

  /// Extract up to `max_responses` responses from `cir_taps` (spacing
  /// `ts_s`). Results are sorted by ascending tau (paper step 7).
  virtual std::vector<DetectedResponse> detect(const CVec& cir_taps,
                                               double ts_s,
                                               int max_responses) const = 0;
};

}  // namespace uwb::ranging
