// Concurrent-ranging protocol configuration, the combined response-position-
// modulation / pulse-shaping assignment (paper Sect. VII/VIII), and the
// interpretation of detected responses into per-responder distances.
//
// Assignment (Fig. 8): responder ID -> slot = ID % N_RPM and pulse shape
// = floor(ID / N_RPM). (The paper prints n_PS = floor(ID / N_PS), which is
// out of range for ID >= N_PS^2 and inconsistent with its own Fig. 8; the
// form used here is the unique bijection on ID < N_RPM * N_PS consistent
// with the figure — see DESIGN.md.)
#pragma once

#include <cstdint>
#include <vector>

#include "common/constants.hpp"
#include "ranging/detector.hpp"

namespace uwb::ranging {

struct ConcurrentRangingConfig {
  /// Response delay Delta_RESP (paper: 290 us, covering the 178.5 us
  /// minimum plus the <100 us RX/TX turnaround and a safety gap).
  double response_delay_s = 290e-6;
  /// Number of response-position-modulation slots N_RPM (1 = RPM off).
  int num_slots = 1;
  /// Slot separation delta [s] (ignored when num_slots == 1).
  double slot_spacing_s = 0.0;
  /// Pulse-shape bank s_i (N_PS = size). One entry = anonymous ranging.
  std::vector<std::uint8_t> shape_registers{k::tc_pgdelay_default};
  /// Detector settings (shape_registers is mirrored into the detector by
  /// the session).
  DetectorConfig detector;

  int num_pulse_shapes() const { return static_cast<int>(shape_registers.size()); }
  int max_responders() const { return num_slots * num_pulse_shapes(); }
  void validate() const;
};

/// Slot + pulse shape derived from a responder ID.
struct SlotAssignment {
  int slot = 0;
  int shape_index = 0;
  std::uint8_t shape_register = k::tc_pgdelay_default;
  /// Additional response delay delta_i = slot * delta.
  double extra_delay_s = 0.0;
};

/// Assignment for `responder_id` in [0, max_responders()).
SlotAssignment assign_responder(int responder_id,
                                const ConcurrentRangingConfig& config);

/// Inverse: responder ID from a decoded slot and shape index.
int responder_id_from(int slot, int shape_index,
                      const ConcurrentRangingConfig& config);

/// One responder's interpreted measurement.
struct ResponderEstimate {
  /// Estimated distance initiator -> responder [m] (Eq. 4, slot-corrected).
  double distance_m = 0.0;
  /// Decoded RPM slot (0 when RPM is off).
  int slot = 0;
  /// Classified pulse-shape index (-1 when shaping is off).
  int shape_index = -1;
  /// Decoded responder ID (-1 when anonymous).
  int responder_id = -1;
  /// Detected amplitude magnitude.
  double amplitude = 0.0;
  /// Raw peak delay relative to the first detected response [s].
  double tau_rel_s = 0.0;
};

/// Turn detector output (ascending tau) into distances: the first response
/// belongs to the decoded (sync) responder at distance d_twr; later peaks
/// are slot-decoded relative to it and mapped through Eq. 4. `sync_slot` is
/// the slot of the decoded responder (0 in the canonical deployment).
std::vector<ResponderEstimate> interpret_responses(
    const std::vector<DetectedResponse>& detections,
    const ConcurrentRangingConfig& config, double d_twr_m, int sync_slot = 0);

/// Slot-aware selection (extension): when several interpreted responses
/// decode to the same responder ID — e.g. a multipath component of a nearby
/// responder landing in the same slot — keep only the *earliest* of the
/// strongest cluster per ID (the direct path precedes its reflections).
/// Estimates without an ID pass through unchanged. Order is preserved.
std::vector<ResponderEstimate> select_slot_responses(
    const std::vector<ResponderEstimate>& estimates,
    const ConcurrentRangingConfig& config);

}  // namespace uwb::ranging
