#include "ranging/detector.hpp"

#include "common/expects.hpp"

namespace uwb::ranging {

namespace detail {

void validate_detector_config(const DetectorConfig& cfg) {
  UWB_EXPECTS(cfg.upsample_factor >= 1 && cfg.upsample_factor <= 64);
  UWB_EXPECTS(!cfg.shape_registers.empty());
  UWB_EXPECTS(cfg.noise_threshold_factor > 0.0);
  UWB_EXPECTS(cfg.relative_stop_fraction >= 0.0 &&
              cfg.relative_stop_fraction < 1.0);
}

}  // namespace detail

}  // namespace uwb::ranging
