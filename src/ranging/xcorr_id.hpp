// Cross-correlation responder identification — the feasibility study's
// approach that the paper's open challenge II argues against.
//
// Corbalán & Picco suggested identifying responders by cross-correlating
// the concurrent CIR against reference CIRs previously recorded for each
// responder in isolation. The paper points out this breaks in practice: the
// isolated CIR signature depends on the responder's position and the
// surrounding environment, so any movement invalidates the references.
// This implementation exists as a baseline so the failure mode can be
// demonstrated quantitatively (bench_ablation_xcorr) against the paper's
// pulse-shaping identification.
#pragma once

#include <map>

#include "common/types.hpp"
#include "ranging/detector.hpp"

namespace uwb::ranging {

class XcorrIdentifier {
 public:
  /// Half-width of the CIR neighbourhood compared around a response [s].
  explicit XcorrIdentifier(double window_s = 15e-9);

  /// Record a responder's reference signature from an isolated round:
  /// the CIR segment around its detected response.
  void add_reference(int responder_id, const CVec& cir_taps, double ts_s,
                     double response_tau_s);

  int reference_count() const { return static_cast<int>(references_.size()); }

  struct Match {
    int responder_id = -1;
    /// Peak normalised cross-correlation in [0, 1].
    double score = 0.0;
  };

  /// Identify the responder behind one detected response by the best
  /// normalised cross-correlation against all references (with a small lag
  /// search). Returns responder_id -1 when no references exist.
  Match identify(const CVec& cir_taps, double ts_s,
                 const DetectedResponse& response) const;

  /// Extract the unit-energy CIR segment centred at tau (helper, exposed
  /// for tests).
  static CVec extract_snippet(const CVec& cir_taps, double ts_s, double tau_s,
                              double window_s);

 private:
  double window_s_;
  std::map<int, CVec> references_;  // unit-energy snippets
};

}  // namespace uwb::ranging
