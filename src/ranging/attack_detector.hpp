// Attack detection for concurrent ranging (robustness extension).
//
// Cross-checks the quantities a single round already produces — the CFO
// estimate, the responder-reported reply interval, the superposed CIR, and
// the decoded slot/shape IDs — for the internal inconsistencies the
// src/fault/attack.hpp adversary model leaves behind:
//
//   check            attack caught                    physical invariant
//   ---------------  -------------------------------  --------------------------
//   cfo_implausible  clock-skew carrier overshoot     crystals are < ~10 ppm off
//   reply_schedule   forged reply timestamp           Delta_RESP is programmed,
//                                                     off only by TX quantisation
//   ghost_tail       early ghost CIR peak             a real first path drags a
//                                                     multipath tail behind it
//   shape_margin     replayed out-of-bank pulse       a genuine response matches
//                    (opt-in, off by default)         exactly one bank template
//   unknown_id       replayed shapes (in- and         decoded IDs come from the
//                    out-of-bank) flipping the        deployed responder set
//                    decoded ID
//
// Every verdict names the responder it indicts, the check that fired, and
// the metric-vs-threshold pair behind it, and is mirrored into the flight
// recorder (kind=verdict on the sync frame's chain) so
// tools/explain_session.py can narrate which check caught which attack.
//
// Thresholds are calibrated against the benign fault plans of
// bench_ext_fault_sweep (up to 30 % loss): a benign sweep must produce zero
// verdicts — enforced by bench_ext_adversarial's benign_false_positive_rate
// gate. Calibration data (200 benign office rounds, strong peaks only):
// tail ratios in the 3..20 ns window never fell below 0.0255; ghost taps
// at >= 20 ns effective separation sit at 0.003..0.019. Best-template
// correlations and margins, by contrast, overlap completely between benign
// and forged pulses (DW1000 TC_PGDELAY shapes are too similar under
// multipath), so the shape-margin check ships disabled (min_shape_margin =
// 0) and replay forgeries are caught by the unknown-ID check instead: the
// forged shape flips the decoded (slot, shape) ID out of the deployed set.
// There is deliberately no duplicate-ID check: a multipath reflection of a
// nearby responder landing in its own slot decodes to the same ID and
// would indict an honest node.
#pragma once

#include <set>
#include <vector>

#include "common/types.hpp"
#include "dw1000/cir.hpp"
#include "ranging/protocol.hpp"

namespace uwb::ranging {

/// Which cross-check indicted the responder.
enum class AttackCheck : std::uint8_t {
  kCfoImplausible,
  kReplySchedule,
  kGhostTail,
  kShapeMargin,
  kUnknownId,
};

/// Stable reason-code string ("cfo_implausible", ...) — also the flight
/// recorder event detail.
const char* to_string(AttackCheck check);

/// One indictment: responder, check, and the evidence behind it.
struct AttackVerdict {
  /// Indicted responder (-1 when the response decoded to no known ID).
  int responder_id = -1;
  AttackCheck check = AttackCheck::kCfoImplausible;
  /// Observed value of the checked quantity.
  double metric = 0.0;
  /// Threshold it violated.
  double threshold = 0.0;
  /// CIR peak time of the offending response [s]; 0 for round-level checks
  /// (CFO, reply schedule).
  double tau_s = 0.0;
};

struct AttackDetectorConfig {
  bool enabled = false;
  /// Max plausible |CFO| [ppm]. Crystal spec is +-10 ppm; two honest 1 ppm
  /// sigma crystals differ by ~1.4 ppm sigma, so 8 ppm is > 5 sigma benign.
  double cfo_max_ppm = 8.0;
  /// Max |measured - programmed| reply interval [s]. Honest replies are off
  /// only by delayed-TX quantisation (< 8.013 ns) plus timestamp noise.
  double reply_tolerance_s = 25e-9;
  /// Ghost-tail check: energy window (tau + gap .. tau + window] behind each
  /// strong peak, compared against the peak's own energy. A genuine first
  /// path is followed by its multipath tail; an isolated ghost tap is not.
  /// The window must stay below the attacker's one-way propagation delay:
  /// injected ghosts can lead the legitimate path by at most that much (a
  /// CIR tap cannot precede the frame's transmission), and the legitimate
  /// path landing inside the window would masquerade as the ghost's tail.
  double tail_gap_s = 3e-9;
  double tail_window_s = 20e-9;
  double min_tail_ratio = 0.02;
  /// Only peaks at least this fraction of the round's strongest response
  /// are tail/shape-checked (weak peaks ride on noise either way).
  double strong_peak_fraction = 0.35;
  /// Shape check: min margin of the best bank-template correlation over the
  /// runner-up. Disabled by default (0): measured benign margins reach down
  /// to 0.006 while out-of-bank forgeries score margins *above* the benign
  /// median, so no positive threshold separates them — forged shapes are
  /// caught via the decoded-ID flip (unknown_id) instead. Opt-in for
  /// forensic runs that tolerate false positives.
  double min_shape_margin = 0.0;
  /// CIR half-window around a peak for the shape correlation [s].
  double shape_window_s = 15e-9;
  /// Unknown-ID check fires only for responses at least this fraction of
  /// the strongest response (benign weak-peak misclassifications pass).
  double unknown_min_rel_amplitude = 0.5;

  void validate() const;
};

/// Everything of one decoded round the detector looks at. All pointers are
/// non-owning and must outlive detect(). `estimates` must be the
/// uncollapsed interpret_responses() output: one entry per detection, same
/// order.
struct RoundView {
  /// Receiver CFO estimate for the sync frame [ppm].
  double cfo_ppm = 0.0;
  /// Responder-reported reply interval (t_tx_resp - t_rx_resp) [s].
  double reply_s = 0.0;
  /// Reply interval the protocol programmed for the sync responder [s]
  /// (response delay + its RPM slot offset).
  double programmed_reply_s = 0.0;
  int sync_responder_id = -1;
  const dw::CirEstimate* cir = nullptr;
  const std::vector<DetectedResponse>* detections = nullptr;
  const std::vector<ResponderEstimate>* estimates = nullptr;
  const ConcurrentRangingConfig* ranging = nullptr;
  /// Deployed responder IDs (the unknown_id check's ground set).
  const std::set<int>* configured_ids = nullptr;
};

class AttackDetector {
 public:
  explicit AttackDetector(AttackDetectorConfig config);

  const AttackDetectorConfig& config() const { return config_; }

  /// Run every check against one decoded round. Emits one flight-recorder
  /// kVerdict event per verdict (call inside the sync frame's chain scope).
  std::vector<AttackVerdict> detect(const RoundView& round) const;

  /// Energy in (tau+gap .. tau+window] relative to the peak's own energy
  /// (helper, exposed for tests and threshold calibration).
  static double tail_energy_ratio(const CVec& cir_taps, double ts_s,
                                  double tau_s, double gap_s, double window_s);

  /// Margin of the best-matching bank template's normalised correlation
  /// over the runner-up at `tau_s` (1.0 when the bank has one shape).
  static double shape_margin(const CVec& cir_taps, double ts_s, double tau_s,
                             double window_s,
                             const std::vector<std::uint8_t>& shape_registers);

 private:
  AttackDetectorConfig config_;
};

}  // namespace uwb::ranging
