#include "ranging/capacity.hpp"

#include <cmath>

#include "common/constants.hpp"
#include "common/expects.hpp"
#include "dw1000/frame.hpp"

namespace uwb::ranging {

namespace {

double init_airtime_s(const dw::PhyConfig& phy) {
  dw::MacFrame init;
  init.type = dw::FrameType::Init;
  return phy.frame_duration_s(init.payload_bytes());
}

double resp_airtime_s(const dw::PhyConfig& phy) {
  dw::MacFrame resp;
  resp.type = dw::FrameType::Resp;
  return phy.frame_duration_s(resp.payload_bytes());
}

}  // namespace

double cir_max_offset_s(const dw::PhyConfig& phy) {
  return static_cast<double>(phy.cir_length()) * k::cir_ts_s;
}

int rpm_slots_paper(const dw::PhyConfig& phy, double max_range_m) {
  UWB_EXPECTS(max_range_m > 0.0);
  return static_cast<int>(
      std::floor(cir_max_offset_s(phy) * k::c_air / max_range_m));
}

int rpm_slots_aliasing_free(const dw::PhyConfig& phy, double max_range_m) {
  UWB_EXPECTS(max_range_m > 0.0);
  return static_cast<int>(
      std::floor(cir_max_offset_s(phy) * k::c_air / (2.0 * max_range_m)));
}

int max_concurrent_responders(int num_slots, int num_pulse_shapes) {
  UWB_EXPECTS(num_slots >= 1 && num_pulse_shapes >= 1);
  return num_slots * num_pulse_shapes;
}

std::int64_t twr_message_count(int num_nodes) {
  UWB_EXPECTS(num_nodes >= 2);
  return static_cast<std::int64_t>(num_nodes) * (num_nodes - 1);
}

std::int64_t concurrent_message_count(int num_nodes) {
  UWB_EXPECTS(num_nodes >= 2);
  return num_nodes;
}

RpmPlan plan_rpm(const dw::PhyConfig& phy, double max_range_m,
                 double delay_spread_s, int responders) {
  UWB_EXPECTS(max_range_m > 0.0);
  UWB_EXPECTS(delay_spread_s >= 0.0);
  UWB_EXPECTS(responders >= 1);

  RpmPlan plan;
  // Aliasing-free slot width: responses within one slot spread over the
  // round-trip range difference plus the multipath tail.
  const double slot_width_s = 2.0 * max_range_m / k::c_air + delay_spread_s;
  const double span_s = cir_max_offset_s(phy);
  const int slots = static_cast<int>(std::floor(span_s / slot_width_s));
  if (slots < 1) return plan;  // even a single slot cannot hold the spread

  plan.num_slots = slots;
  plan.slot_spacing_s = span_s / slots;
  plan.num_pulse_shapes = static_cast<int>(
      std::ceil(static_cast<double>(responders) / slots));
  if (plan.num_pulse_shapes > k::num_pulse_shapes) return plan;  // infeasible

  // Spread the registers across the full range for maximum template
  // separability; a single shape uses the default.
  plan.shape_registers.clear();
  if (plan.num_pulse_shapes == 1) {
    plan.shape_registers.push_back(k::tc_pgdelay_default);
  } else {
    const int span = k::tc_pgdelay_max - k::tc_pgdelay_default;
    for (int i = 0; i < plan.num_pulse_shapes; ++i) {
      plan.shape_registers.push_back(static_cast<std::uint8_t>(
          k::tc_pgdelay_default +
          span * i / (plan.num_pulse_shapes - 1)));
    }
  }
  plan.capacity = plan.num_slots * plan.num_pulse_shapes;
  plan.feasible = true;
  return plan;
}

RoundCost twr_round_cost(int num_neighbors, const dw::PhyConfig& phy,
                         double response_delay_s,
                         const dw::EnergyModelParams& energy) {
  UWB_EXPECTS(num_neighbors >= 1);
  UWB_EXPECTS(response_delay_s > 0.0);
  const double init_s = init_airtime_s(phy);
  const double resp_s = resp_airtime_s(phy);
  // Initiator per exchange: transmit INIT, then receive until the RESP has
  // fully arrived (RESP RMARKER lands response_delay_s after the INIT
  // RMARKER).
  const double rx_window_s = response_delay_s + resp_s - init_s;
  UWB_EXPECTS(rx_window_s > 0.0);

  RoundCost cost;
  const double init_tx_j = init_s * energy.tx_current_a * energy.supply_v;
  const double init_rx_j = rx_window_s * energy.rx_current_a * energy.supply_v;
  cost.initiator_j = num_neighbors * (init_tx_j + init_rx_j);
  cost.per_responder_j = (init_s * energy.rx_current_a +
                          resp_s * energy.tx_current_a) *
                         energy.supply_v;
  cost.network_j = cost.initiator_j + num_neighbors * cost.per_responder_j;
  cost.initiator_messages = 2 * num_neighbors;
  return cost;
}

RoundCost concurrent_round_cost(int num_neighbors, const dw::PhyConfig& phy,
                                double response_delay_s,
                                const dw::EnergyModelParams& energy) {
  UWB_EXPECTS(num_neighbors >= 1);
  UWB_EXPECTS(response_delay_s > 0.0);
  const double init_s = init_airtime_s(phy);
  const double resp_s = resp_airtime_s(phy);
  // One reception window covers all concurrent responses; add the CIR span
  // to accommodate response position modulation.
  const double rx_window_s =
      response_delay_s + resp_s - init_s + cir_max_offset_s(phy);
  UWB_EXPECTS(rx_window_s > 0.0);

  RoundCost cost;
  cost.initiator_j = (init_s * energy.tx_current_a +
                      rx_window_s * energy.rx_current_a) *
                     energy.supply_v;
  cost.per_responder_j = (init_s * energy.rx_current_a +
                          resp_s * energy.tx_current_a) *
                         energy.supply_v;
  cost.network_j = cost.initiator_j + num_neighbors * cost.per_responder_j;
  cost.initiator_messages = 2;
  return cost;
}

}  // namespace uwb::ranging
