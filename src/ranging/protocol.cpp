#include "ranging/protocol.hpp"

#include <cmath>
#include <map>

#include "common/expects.hpp"

namespace uwb::ranging {

void ConcurrentRangingConfig::validate() const {
  UWB_EXPECTS(response_delay_s > 0.0);
  UWB_EXPECTS(num_slots >= 1);
  UWB_EXPECTS(num_slots == 1 || slot_spacing_s > 0.0);
  UWB_EXPECTS(!shape_registers.empty());
}

SlotAssignment assign_responder(int responder_id,
                                const ConcurrentRangingConfig& config) {
  config.validate();
  UWB_EXPECTS(responder_id >= 0);
  // IDs beyond max_responders() alias onto slot/shape pairs — the system
  // keeps working but such responders are no longer uniquely identifiable.
  SlotAssignment a;
  a.slot = responder_id % config.num_slots;
  a.shape_index = (responder_id / config.num_slots) % config.num_pulse_shapes();
  a.shape_register =
      config.shape_registers[static_cast<std::size_t>(a.shape_index)];
  a.extra_delay_s = config.num_slots > 1
                        ? static_cast<double>(a.slot) * config.slot_spacing_s
                        : 0.0;
  return a;
}

int responder_id_from(int slot, int shape_index,
                      const ConcurrentRangingConfig& config) {
  UWB_EXPECTS(slot >= 0 && slot < config.num_slots);
  UWB_EXPECTS(shape_index >= 0 && shape_index < config.num_pulse_shapes());
  return shape_index * config.num_slots + slot;
}

std::vector<ResponderEstimate> interpret_responses(
    const std::vector<DetectedResponse>& detections,
    const ConcurrentRangingConfig& config, double d_twr_m, int sync_slot) {
  config.validate();
  std::vector<ResponderEstimate> out;
  if (detections.empty()) return out;
  const double tau_first = detections.front().tau_s;

  for (const DetectedResponse& det : detections) {
    ResponderEstimate est;
    est.tau_rel_s = det.tau_s - tau_first;
    est.amplitude = std::abs(det.amplitude);
    est.shape_index = det.shape_index;

    // Slot decode: responses are spread by multiples of the slot spacing;
    // the nearest multiple gives the slot offset from the sync responder.
    int rel_slots = 0;
    if (config.num_slots > 1) {
      rel_slots = static_cast<int>(
          std::lround(est.tau_rel_s / config.slot_spacing_s));
    }
    est.slot = sync_slot + rel_slots;

    // Eq. 4 with the slot delay removed; CIR delay differences cover both
    // the INIT and RESP legs, so they are halved — the artificial slot
    // delay appears only once and is subtracted whole.
    const double residual_s =
        est.tau_rel_s -
        static_cast<double>(rel_slots) * config.slot_spacing_s;
    est.distance_m = d_twr_m + k::c_air * residual_s / 2.0;

    // With a single-template bank the detector reports no shape; the shape
    // index is then trivially 0 and IDs can still be decoded from slots.
    const int shape = est.shape_index >= 0
                          ? est.shape_index
                          : (config.num_pulse_shapes() == 1 ? 0 : -1);
    if (est.slot >= 0 && est.slot < config.num_slots && shape >= 0)
      est.responder_id = responder_id_from(est.slot, shape, config);
    out.push_back(est);
  }
  return out;
}

std::vector<ResponderEstimate> select_slot_responses(
    const std::vector<ResponderEstimate>& estimates,
    const ConcurrentRangingConfig& config) {
  config.validate();
  // For each decoded ID choose a representative: the earliest estimate whose
  // amplitude is within 6 dB (factor 2) of the strongest for that ID. This
  // keeps the direct path rather than a stronger-but-later reflection, and
  // rather than a weak precursor noise blip.
  std::map<int, double> strongest;
  for (const ResponderEstimate& est : estimates) {
    if (est.responder_id < 0) continue;
    auto [it, inserted] = strongest.emplace(est.responder_id, est.amplitude);
    if (!inserted) it->second = std::max(it->second, est.amplitude);
  }
  std::map<int, const ResponderEstimate*> chosen;
  for (const ResponderEstimate& est : estimates) {
    if (est.responder_id < 0) continue;
    if (est.amplitude < 0.5 * strongest.at(est.responder_id)) continue;
    chosen.emplace(est.responder_id, &est);  // first qualifying = earliest
  }
  std::vector<ResponderEstimate> out;
  for (const ResponderEstimate& est : estimates) {
    if (est.responder_id < 0) {
      out.push_back(est);
      continue;
    }
    const auto it = chosen.find(est.responder_id);
    if (it != chosen.end() && it->second == &est) out.push_back(est);
  }
  return out;
}

}  // namespace uwb::ranging
