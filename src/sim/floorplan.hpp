// Multi-room floor-plan generator for building-scale scenarios
// (DESIGN.md Sect. 13).
//
// Produces a rooms_x x rooms_y grid of rooms: four reflecting outer walls
// and interior partitions modelled as attenuating Obstacles with a centered
// doorway gap per room edge. Partitions are Obstacles rather than Walls on
// purpose — the image-source solver is O(walls^order) per (tx, rx) pair and
// its memo keys on exact positions, so hundreds of reflecting interior
// segments would thrash the cache at building scale while contributing
// little beyond attenuation. Node placement is deterministic from a seed
// via derive_seed, round-robining rooms so density stays uniform.
#pragma once

#include <cstdint>
#include <vector>

#include "geom/room.hpp"
#include "geom/vec2.hpp"

namespace uwb::sim {

struct FloorPlanConfig {
  int rooms_x = 1;
  int rooms_y = 1;
  double room_w_m = 6.0;
  double room_h_m = 5.0;
  /// Doorway gap in every interior partition segment, centered per room
  /// edge. Must be smaller than the room side it cuts.
  double doorway_m = 1.0;
  /// Reflection loss of the four outer walls [dB].
  double outer_reflection_loss_db = 8.0;
  /// Transmission loss through an interior partition [dB].
  double partition_loss_db = 6.0;
  /// Nodes are placed at least this far from any room boundary [m].
  double placement_margin_m = 0.5;
};

/// A generated building: the Room (walls + partition obstacles) plus the
/// grid metadata needed to address individual rooms.
struct FloorPlan {
  FloorPlanConfig config;
  geom::Room room;

  double width_m() const { return config.room_w_m * config.rooms_x; }
  double height_m() const { return config.room_h_m * config.rooms_y; }
  geom::Vec2 center() const { return {width_m() / 2.0, height_m() / 2.0}; }
  int room_count() const { return config.rooms_x * config.rooms_y; }
  /// Center of room `index` (row-major: index = iy * rooms_x + ix).
  geom::Vec2 room_center(int index) const;
};

/// Build the Room geometry for `config`.
FloorPlan make_floor_plan(const FloorPlanConfig& config);

/// Near-square grid sized so `node_count` nodes average `nodes_per_room`
/// per room (other fields default-constructed).
FloorPlanConfig plan_for_nodes(int node_count, double nodes_per_room = 2.0);

/// Deterministic node placement: round-robin over rooms, uniform inside
/// each room's margin-inset interior. Same (plan, count, seed) -> same
/// positions, bit-identical.
std::vector<geom::Vec2> place_nodes(const FloorPlan& plan, int count,
                                    std::uint64_t seed);

}  // namespace uwb::sim
