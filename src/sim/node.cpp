#include "sim/node.hpp"

#include <algorithm>
#include <cmath>

#include "common/expects.hpp"
#include "common/units.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/obs.hpp"

namespace uwb::sim {

namespace {
/// Processing margin after the last sample of a frame before the receiver
/// reports the result.
const SimTime kFinalizeMargin = SimTime::from_micros(2.0);
}  // namespace

Node::Node(Simulator& simulator, Medium& medium, NodeConfig config, Rng rng)
    : sim_(simulator), medium_(medium), config_(config),
      clock_(config.clock_epoch_offset, config.drift_ppm), rng_(std::move(rng)) {
  config_.phy.validate();
  UWB_EXPECTS(config_.cir_anchor_taps >= 0 &&
              config_.cir_anchor_taps < config_.cir.length);
  medium_.register_node(*this);
}

SimTime Node::local_duration(Seconds local) const {
  return SimTime::from_seconds(local.value() / (1.0 + config_.drift_ppm * 1e-6));
}

dw::DwTimestamp Node::device_now() const { return clock_.device_time(sim_.now()); }

void Node::enter_rx() {
  UWB_EXPECTS(!rx_enabled_);
  rx_enabled_ = true;
  rx_since_ = sim_.now();
  pending_.clear();
}

void Node::exit_rx() {
  if (!rx_enabled_) return;
  energy_.add_rx((sim_.now() - rx_since_).seconds());
  rx_enabled_ = false;
  if (UWB_FR_ACTIVE()) {
    // Frames still pending when the protocol turns the radio off never
    // finalize — record where each chain died.
    for (const AirFrame& af : pending_) {
      UWB_FR_EVENT(.kind = obs::FrKind::kRx, .name = "rx_abandoned",
                   .chain = af.chain, .node = config_.id,
                   .peer = af.tx_node_id);
    }
  }
  pending_.clear();
}

void Node::transmit_at(const dw::MacFrame& frame, SimTime preamble_start_global) {
  const Seconds shr_global =
      to_seconds(local_duration(Seconds(config_.phy.shr_duration_s())));
  const Seconds frame_global = to_seconds(local_duration(
      Seconds(config_.phy.frame_duration_s(frame.payload_bytes()))));
  // The wave leaves the antenna half the antenna delay after the digital
  // timestamp reference (the other half applies on reception).
  const SimTime radiated =
      preamble_start_global + to_sim_time(config_.antenna_delay / 2.0);
  medium_.transmit(config_.id, frame, config_.phy.tc_pgdelay, radiated,
                   shr_global, frame_global, config_.drift_ppm);
  energy_.add_tx(frame_global.value());
}

dw::DwTimestamp Node::transmit_now(const dw::MacFrame& frame) {
  UWB_EXPECTS(!rx_enabled_);
  const SimTime preamble_start = sim_.now();
  transmit_at(frame, preamble_start);
  const SimTime rmarker =
      preamble_start + local_duration(Seconds(config_.phy.shr_duration_s()));
  return clock_.device_time(rmarker);
}

dw::DwTimestamp Node::delayed_tx_time(dw::DwTimestamp rmarker_target) const {
  if (!config_.delayed_tx_truncation) return rmarker_target;
  return dw::quantize_delayed_tx(rmarker_target);
}

void Node::apply_clock_glitch(double drift_step_ppm, double epoch_jump_s) {
  clock_ = dw::ClockModel(
      clock_.epoch_offset() + SimTime::from_seconds(epoch_jump_s),
      clock_.drift_ppm() + drift_step_ppm);
  // local_duration() and the medium's CFO ground truth read config_, which
  // must stay consistent with the clock model.
  config_.drift_ppm = clock_.drift_ppm();
}

bool Node::schedule_delayed_tx(dw::MacFrame frame,
                               dw::DwTimestamp quantized_rmarker) {
  UWB_EXPECTS(quantized_rmarker == delayed_tx_time(quantized_rmarker));
  const SimTime rmarker_global =
      clock_.global_time_of(quantized_rmarker, sim_.now());
  const SimTime preamble_start =
      rmarker_global - local_duration(Seconds(config_.phy.shr_duration_s()));
  // The target (minus the preamble lead-in) is already in the past: the
  // hardware raises HPDWARN and the firmware aborts the transmission — a
  // runtime condition, not a precondition violation.
  if (preamble_start < sim_.now()) {
    UWB_FR_EVENT(.kind = obs::FrKind::kTx, .name = "delayed_tx_abort",
                 .node = config_.id, .detail = "target_in_past");
    return false;
  }
  fault::FaultInjector* injector = medium_.fault_injector();
  if (injector != nullptr && injector->abort_delayed_tx(config_.id))
    return false;
  sim_.at(preamble_start, [this, frame = std::move(frame), preamble_start]() {
    transmit_at(frame, preamble_start);
  });
  return true;
}

void Node::on_air_frame(AirFrame af) {
  if (!rx_enabled_ || sim_.now() < rx_since_) {
    UWB_FR_EVENT(.kind = obs::FrKind::kRx, .name = "rx_radio_off",
                 .chain = af.chain, .node = config_.id, .peer = af.tx_node_id);
    return;
  }
  if (pending_.empty()) {
    // An injected preamble miss on a would-be leader means the receiver
    // never locks: the frame is lost outright (its energy superposes only
    // when another frame already holds the lock). The injector already
    // recorded the fault event for this chain.
    if (af.preamble_missed) return;
    // Batch leader: the receiver locks on and reports once the frame ends.
    UWB_FR_EVENT(.kind = obs::FrKind::kRx, .name = "rx_batch_lead",
                 .chain = af.chain, .node = config_.id, .peer = af.tx_node_id,
                 .v0 = {"first_path_amp", af.first_path_amplitude});
    sim_.at(af.frame_end_arrival + kFinalizeMargin, [this]() { finalize_batch(); });
    // clear() keeps capacity, so pending_ reallocates only while ramping
    // to the largest batch seen; steady state is allocation-free.
    pending_.push_back(std::move(af));  // uwb-lint: allow(hot-path-alloc)
    return;
  }
  // Later frames join the batch only if their preamble overlaps the
  // leader's synchronisation header; otherwise the radio is busy and the
  // frame is lost.
  if (af.preamble_start_arrival <= pending_.front().rmarker_arrival) {
    UWB_FR_EVENT(.kind = obs::FrKind::kRx, .name = "rx_batch_join",
                 .chain = af.chain, .node = config_.id, .peer = af.tx_node_id,
                 .v0 = {"batch_size", static_cast<double>(pending_.size() + 1)});
    // Same steady-state-capacity argument as the batch-leader push above.
    pending_.push_back(std::move(af));  // uwb-lint: allow(hot-path-alloc)
  } else {
    UWB_FR_EVENT(.kind = obs::FrKind::kRx, .name = "rx_late_for_batch",
                 .chain = af.chain, .node = config_.id, .peer = af.tx_node_id);
  }
}

void Node::finalize_batch() {
  if (!rx_enabled_ || pending_.empty()) return;

  // Sync selection: earliest detectable preamble wins unless a much
  // stronger overlapping frame captures the correlator. Frames whose
  // preamble detection was faulted out can never take the lock (the leader
  // is guaranteed un-missed by on_air_frame).
  const AirFrame* sync = &pending_.front();
  for (const AirFrame& af : pending_) {
    if (af.preamble_missed) continue;
    if (af.first_path_amplitude >
        sync->first_path_amplitude * config_.capture_amplitude_ratio)
      sync = &af;
  }

  // Superpose every tap of every batch frame into the CIR window anchored
  // `cir_anchor_taps` before the sync frame's first path.
  const double window_start_s =
      sync->preamble_start_arrival.seconds() -
      static_cast<double>(config_.cir_anchor_taps) * config_.cir.ts_s;
  std::vector<dw::CirArrival> arrivals;
  std::size_t n_taps = 0;
  for (const AirFrame& af : pending_) n_taps += af.taps.size();
  arrivals.reserve(n_taps);
  for (const AirFrame& af : pending_) {
    const double tx_ref_s =
        af.preamble_start_arrival.seconds() - af.first_detectable_delay.value();
    for (const channel::Tap& tap : af.taps) {
      dw::CirArrival a;
      a.time_into_window_s = tx_ref_s + tap.delay_s - window_start_s;
      a.amplitude = tap.amplitude;
      a.tc_pgdelay = af.tc_pgdelay;
      arrivals.push_back(a);
    }
  }

  RxResult result;
  {
    UWB_OBS_SPAN("cir_synthesis");
    result.cir = dw::synthesize_cir(arrivals, config_.cir, rng_);
  }
  result.cir.first_path_index = static_cast<double>(config_.cir_anchor_taps);
  result.rx_timestamp =
      dw::noisy_rx_timestamp(config_.timestamping, sync->tc_pgdelay,
                             clock_.device_time(sync->rmarker_arrival), rng_)
          .plus_seconds(config_.antenna_delay / 2.0);
  result.carrier_offset_ppm = sync->tx_drift_ppm - config_.drift_ppm +
                              rng_.normal(0.0, config_.cfo_noise_ppm);
  result.frames_in_batch = static_cast<int>(pending_.size());
  result.sync_tx_node_id = sync->tx_node_id;
  result.sync_chain = sync->chain;
  result.batch_tx_node_ids.reserve(pending_.size());
  for (const AirFrame& af : pending_)
    result.batch_tx_node_ids.push_back(af.tx_node_id);
  result.completed_at = sim_.now();

  // Payload decode: the sync frame survives if its first-path power clears
  // the configured SIR against the strongest other frame. (Concurrent RESP
  // payloads are chip-offset copies, so corruption is dominated by the
  // strongest colliding frame rather than the incoherent sum — consistent
  // with the paper's observation that one payload stays decodable even with
  // several equal-power responders.)
  const auto frame_power = [](const AirFrame& af) {
    double p = 0.0;
    for (const channel::Tap& tap : af.taps) p += std::norm(tap.amplitude);
    return p;
  };
  double interference = 0.0;
  for (const AirFrame& af : pending_) {
    if (&af == sync) continue;
    interference = std::max(interference, frame_power(af));
  }
  const double sync_power = frame_power(*sync);
  const double sir_db = interference == 0.0
                            ? 0.0
                            : linear_to_db(sync_power / interference);
  bool decodable =
      interference == 0.0 || sir_db >= config_.decode_min_sir_db;
  if (!decodable) {
    UWB_FR_EVENT(.kind = obs::FrKind::kRx, .name = "rx_decode_failed",
                 .chain = sync->chain, .node = config_.id,
                 .peer = sync->tx_node_id, .detail = "low_sir",
                 .v0 = {"sir_db", sir_db},
                 .v1 = {"min_sir_db", config_.decode_min_sir_db});
  }
  // Injected CRC fault: the payload demodulates but its FCS fails, so the
  // MAC discards it. Either failure path surfaces as crc_error.
  fault::FaultInjector* injector = medium_.fault_injector();
  if (decodable && injector != nullptr &&
      injector->corrupt_crc(config_.id, sync->chain))
    decodable = false;
  if (decodable)
    result.frame = sync->frame;
  else
    result.crc_error = true;

  UWB_FR_EVENT(.kind = obs::FrKind::kRx, .name = "rx_batch_complete",
               .chain = sync->chain, .node = config_.id,
               .peer = sync->tx_node_id,
               .detail = decodable ? "decoded" : "crc_error",
               .v0 = {"frames_in_batch",
                      static_cast<double>(result.frames_in_batch)});

  energy_.add_rx((sim_.now() - rx_since_).seconds());
  rx_enabled_ = false;
  pending_.clear();

  if (rx_handler_) {
    // Events recorded while the protocol reacts to this reception (delayed
    // TX arming, fault decisions, detection) inherit the sync chain.
    UWB_FR_CHAIN_SCOPE(result.sync_chain);
    rx_handler_(result);
  }
}

}  // namespace uwb::sim
