#include "sim/simulator.hpp"

#include "common/expects.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/obs.hpp"

namespace uwb::sim {

void Simulator::at(SimTime t, Action fn) {
  UWB_EXPECTS(t >= now_);
  UWB_EXPECTS(fn != nullptr);
  queue_.push(Event{t, next_seq_++, std::move(fn)});
}

void Simulator::dispatch_one() {
  UWB_OBS_SPAN("sim_dispatch");
  UWB_OBS_COUNT("sim_events", 1);
  // Moving out of the priority queue requires a const_cast-free copy; take
  // the action by move from a mutable reference to the top element.
  Event ev = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  now_ = ev.time;
  // Keep the flight recorder's context clock current so events recorded
  // inside callbacks carry the dispatch's simulated time by default.
  UWB_FR_SET_TIME(now_);
  ++dispatched_;
  ev.fn();
}

void Simulator::run() {
  while (!queue_.empty()) dispatch_one();
}

void Simulator::run_until(SimTime t) {
  while (!queue_.empty() && queue_.top().time <= t) dispatch_one();
  if (now_ < t) now_ = t;
  UWB_FR_SET_TIME(now_);
}

}  // namespace uwb::sim
