// Shared radio medium with spatial interference culling (DESIGN.md Sect. 13).
//
// Propagates every transmission through the channel model (drawing a fresh
// channel realisation per link per frame) and delivers an AirFrame carrying
// the full tap list to each receiver that can detect it. Receivers superpose
// overlapping AirFrames into one CIR — the physical mechanism behind
// concurrent ranging.
//
// Scaling: a conservative interference radius is derived from the channel
// model (the maximum range at which any tap can still reach
// `detection_threshold_amp`), nodes are bucketed into a uniform grid of
// cells with that side length, and `transmit` realizes channels only for
// the 3x3 cell neighborhood of the transmitter — O(local density) instead
// of O(N) per frame. Channel randomness comes from a per-(link, frame)
// stream forked with derive_seed (the same pattern src/fault uses for
// per-node fault streams), so culling a far-away receiver never perturbs
// the draws of the receivers that remain: culled and unculled runs are
// bit-identical for every delivered frame, at any thread count.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "channel/channel_model.hpp"
#include "common/random.hpp"
#include "common/units.hpp"
#include "dw1000/frame.hpp"
#include "dw1000/phy_config.hpp"
#include "fault/attack.hpp"
#include "fault/fault.hpp"
#include "geom/grid.hpp"
#include "obs/metrics.hpp"
#include "sim/simulator.hpp"

namespace uwb::sim {

class Node;

/// A frame as observed at one receiver: payload, per-path taps, and the
/// arrival instants of the relevant frame landmarks.
struct AirFrame {
  int tx_node_id = -1;
  /// Causal chain id of the transmission this frame belongs to: the frame's
  /// channel seed, minted once per transmit() and shared by every receiver's
  /// copy. Flight-recorder events along this frame's life carry it.
  std::uint64_t chain = 0;
  dw::MacFrame frame;
  std::uint8_t tc_pgdelay = 0x93;
  /// TX crystal drift (ground truth, used for the receiver's carrier
  /// frequency offset estimate).
  double tx_drift_ppm = 0.0;
  /// Channel taps (absolute propagation delays TX->RX).
  std::vector<channel::Tap> taps;
  /// Delay of the first path strong enough for the receiver to detect.
  Seconds first_detectable_delay{};
  /// Amplitude magnitude of that first detectable path.
  double first_path_amplitude = 0.0;
  /// Global time the preamble's first detectable copy starts arriving.
  SimTime preamble_start_arrival;
  /// Global time that copy's preamble+SFD ends (RMARKER arrival).
  SimTime rmarker_arrival;
  /// Global time the whole frame has arrived.
  SimTime frame_end_arrival;
  /// Injected fault: the receiver's preamble detector fails on this frame.
  /// The frame cannot lead or sync a batch; its energy still superposes
  /// into the CIR when another frame holds the lock.
  bool preamble_missed = false;
};

struct MediumParams {
  /// Minimum tap amplitude for the receiver's preamble detector to lock.
  double detection_threshold_amp = 0.02;
  /// Skip receivers outside the interference radius without realizing
  /// their channels. Bit-identical to the unculled medium for every
  /// delivered frame (the skipped receivers could never detect a tap).
  bool culling_enabled = true;
  /// Interference radius override [m]. <= 0 derives the radius from the
  /// channel model via ChannelModel::max_detectable_range.
  double interference_radius_m = 0.0;
  /// Fading headroom used when deriving the radius [dB]: covers the
  /// unbounded specular fading draw (16 dB = 16 sigma at the default
  /// 1 dB fading).
  double range_margin_db = 16.0;
};

/// Cumulative frame-traffic totals since construction.
struct MediumStats {
  std::uint64_t frames_transmitted = 0;
  /// AirFrames scheduled for delivery (detectable first path).
  std::uint64_t frames_delivered = 0;
  /// Receivers skipped wholesale by the spatial index.
  std::uint64_t receivers_culled = 0;
  /// Channel realisations actually drawn.
  std::uint64_t channels_realized = 0;
  /// Channels realized whose taps all fell below the detection threshold.
  std::uint64_t below_threshold = 0;
};

/// Delivered/culled traffic attributed to one grid cell (keyed by the
/// receiver's cell). Keys are geographic, so counts survive index rebuilds
/// when nodes register or move.
struct CellTraffic {
  geom::CellKey key = 0;
  std::uint64_t delivered = 0;
  std::uint64_t culled = 0;
  /// Receivers whose channel was realized but had no detectable path.
  /// With delivered and culled this closes the per-frame accounting:
  /// delivered + culled + below_threshold sums to (nodes - 1) per frame
  /// when culling is active.
  std::uint64_t below_threshold = 0;
};

class Medium {
 public:
  Medium(Simulator& simulator, channel::ChannelModel model, MediumParams params,
         Rng rng);

  /// Nodes register themselves on construction.
  void register_node(Node& node);

  /// Called by a transmitting node at the instant its preamble starts.
  /// The duration arguments are already rescaled to global time by the
  /// transmitter's clock model.
  void transmit(int tx_node_id, const dw::MacFrame& frame,
                std::uint8_t tc_pgdelay, SimTime preamble_start,
                Seconds shr_duration, Seconds frame_duration,
                double tx_drift_ppm);

  const channel::ChannelModel& channel_model() const { return model_; }
  Simulator& simulator() { return sim_; }

  /// Install a fault injector (non-owning; nullptr = no faults). Reception
  /// faults are decided here; nodes reach the injector through
  /// fault_injector() for TX/decode faults.
  void set_fault_injector(fault::FaultInjector* injector) {
    fault_ = injector;
  }
  fault::FaultInjector* fault_injector() const { return fault_; }

  /// Install an attack injector (non-owning; nullptr = no adversary).
  /// Transmit-side manipulations (carrier overshoot, forged pulse shape)
  /// and per-link ghost CIR taps are applied here; sessions reach the
  /// injector directly for reply-timestamp bias.
  void set_attack_injector(fault::AttackInjector* injector) {
    attack_ = injector;
  }
  fault::AttackInjector* attack_injector() const { return attack_; }

  /// Resolved interference radius [m]; +infinity when the channel model
  /// admits no finite bound.
  double interference_radius_m() const { return interference_radius_m_; }

  /// True when transmissions actually go through the spatial index
  /// (culling enabled and a finite radius exists).
  bool culling_active() const;

  /// Mark the spatial index stale (a node moved). Rebuilt lazily on the
  /// next transmit.
  void invalidate_spatial_index() { spatial_dirty_ = true; }

  /// The spatial index over current node positions (rebuilt if stale).
  /// Empty when culling is inactive.
  const geom::UniformGrid& spatial_index();

  const MediumStats& stats() const { return stats_; }
  /// Per-cell delivered/culled/below-threshold counts, ascending by cell
  /// key. Empty when culling is inactive.
  const std::vector<CellTraffic>& cell_traffic() const { return cell_traffic_; }

  /// Per-frame delivery fan-out histogram (receivers reached per
  /// transmission). A first-class stat maintained directly — unlike the
  /// registry copy fed through UWB_OBS_HISTOGRAM, it stays live (and
  /// testable) in UWB_OBS_DISABLED builds.
  const obs::Histogram& frame_fanout() const { return fanout_; }

  /// Test hook: observe every AirFrame at the instant it is scheduled
  /// (before delivery). Used by the culling-identity tests.
  void set_delivery_probe(
      std::function<void(int rx_node_id, const AirFrame&)> probe) {
    delivery_probe_ = std::move(probe);
  }

 private:
  enum class DeliverOutcome { kDelivered, kBelowThreshold };

  void ensure_spatial_index();
  /// Realize the link and schedule the AirFrame.
  DeliverOutcome deliver(Node& rx, int tx_node_id, geom::Vec2 tx_pos,
                         std::uint64_t frame_seed, const dw::MacFrame& frame,
                         std::uint8_t tc_pgdelay, SimTime preamble_start,
                         SimTime shr_sim, SimTime frame_sim,
                         double tx_drift_ppm, fault::FaultInjector* injector,
                         fault::AttackInjector* attack);
  CellTraffic& cell_traffic_entry(geom::CellKey key);

  Simulator& sim_;
  channel::ChannelModel model_;
  MediumParams params_;
  fault::FaultInjector* fault_ = nullptr;
  fault::AttackInjector* attack_ = nullptr;
  /// Scratch for ghost-tap queries (avoids per-delivery allocation).
  std::vector<fault::GhostTap> ghost_scratch_;

  /// Base of the per-(link, frame) channel seed hierarchy: one draw from
  /// the Rng the medium was constructed with, so existing scenario seeding
  /// (session forks its master Rng into the medium) keeps working.
  std::uint64_t channel_stream_base_ = 0;
  /// Frames transmitted so far — the per-frame stream index. Identical
  /// between culled and unculled runs because culling never changes which
  /// frames get sent.
  std::uint64_t frame_seq_ = 0;

  /// Registry sorted by node id: deterministic iteration, binary-search
  /// lookup, contiguous walk in the per-frame hot path.
  std::vector<Node*> nodes_;

  double interference_radius_m_ = 0.0;
  bool spatial_dirty_ = true;
  geom::UniformGrid grid_;
  /// Scratch for neighborhood queries (avoids per-frame allocation).
  std::vector<std::int32_t> candidates_;

  MediumStats stats_;
  std::vector<CellTraffic> cell_traffic_;
  obs::Histogram fanout_;
  std::function<void(int, const AirFrame&)> delivery_probe_;
};

}  // namespace uwb::sim
