// Shared radio medium.
//
// Propagates every transmission to every other registered node through the
// channel model (drawing a fresh channel realisation per link per frame) and
// delivers an AirFrame carrying the full tap list. Receivers superpose
// overlapping AirFrames into one CIR — the physical mechanism behind
// concurrent ranging.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "channel/channel_model.hpp"
#include "common/random.hpp"
#include "common/units.hpp"
#include "dw1000/frame.hpp"
#include "dw1000/phy_config.hpp"
#include "fault/fault.hpp"
#include "sim/simulator.hpp"

namespace uwb::sim {

class Node;

/// A frame as observed at one receiver: payload, per-path taps, and the
/// arrival instants of the relevant frame landmarks.
struct AirFrame {
  int tx_node_id = -1;
  dw::MacFrame frame;
  std::uint8_t tc_pgdelay = 0x93;
  /// TX crystal drift (ground truth, used for the receiver's carrier
  /// frequency offset estimate).
  double tx_drift_ppm = 0.0;
  /// Channel taps (absolute propagation delays TX->RX).
  std::vector<channel::Tap> taps;
  /// Delay of the first path strong enough for the receiver to detect.
  Seconds first_detectable_delay{};
  /// Amplitude magnitude of that first detectable path.
  double first_path_amplitude = 0.0;
  /// Global time the preamble's first detectable copy starts arriving.
  SimTime preamble_start_arrival;
  /// Global time that copy's preamble+SFD ends (RMARKER arrival).
  SimTime rmarker_arrival;
  /// Global time the whole frame has arrived.
  SimTime frame_end_arrival;
  /// Injected fault: the receiver's preamble detector fails on this frame.
  /// The frame cannot lead or sync a batch; its energy still superposes
  /// into the CIR when another frame holds the lock.
  bool preamble_missed = false;
};

struct MediumParams {
  /// Minimum tap amplitude for the receiver's preamble detector to lock.
  double detection_threshold_amp = 0.02;
};

class Medium {
 public:
  Medium(Simulator& simulator, channel::ChannelModel model, MediumParams params,
         Rng rng);

  /// Nodes register themselves on construction.
  void register_node(Node& node);

  /// Called by a transmitting node at the instant its preamble starts.
  /// The duration arguments are already rescaled to global time by the
  /// transmitter's clock model.
  void transmit(int tx_node_id, const dw::MacFrame& frame,
                std::uint8_t tc_pgdelay, SimTime preamble_start,
                Seconds shr_duration, Seconds frame_duration,
                double tx_drift_ppm);

  const channel::ChannelModel& channel_model() const { return model_; }
  Simulator& simulator() { return sim_; }

  /// Install a fault injector (non-owning; nullptr = no faults). Reception
  /// faults are decided here; nodes reach the injector through
  /// fault_injector() for TX/decode faults.
  void set_fault_injector(fault::FaultInjector* injector) {
    fault_ = injector;
  }
  fault::FaultInjector* fault_injector() const { return fault_; }

 private:
  Simulator& sim_;
  channel::ChannelModel model_;
  MediumParams params_;
  Rng rng_;
  std::map<int, Node*> nodes_;
  fault::FaultInjector* fault_ = nullptr;
};

}  // namespace uwb::sim
