#include "sim/floorplan.hpp"

#include <cmath>
#include <string>

#include "common/expects.hpp"
#include "common/random.hpp"

namespace uwb::sim {

namespace {

/// Stream index separating node placement from every other consumer of a
/// scenario seed.
constexpr std::uint64_t kPlacementSeedStream = 0xF100A901;

/// Add one partition line as Obstacle segments, leaving a centered doorway
/// gap in each per-room span. `fixed` is the coordinate along the partition
/// normal; spans run along the other axis in steps of `span_m`.
void add_partition(geom::Room& room, bool vertical, double fixed, int spans,
                   double span_m, double doorway_m, double loss_db,
                   const std::string& name) {
  const double solid = (span_m - doorway_m) / 2.0;
  for (int i = 0; i < spans; ++i) {
    const double lo = span_m * i;
    const auto seg = [&](double a, double b) {
      geom::Obstacle o;
      o.segment = vertical ? geom::Segment{{fixed, a}, {fixed, b}}
                           : geom::Segment{{a, fixed}, {b, fixed}};
      o.transmission_loss_db = loss_db;
      o.name = name;
      room.add_obstacle(o);
    };
    seg(lo, lo + solid);
    seg(lo + solid + doorway_m, lo + span_m);
  }
}

}  // namespace

geom::Vec2 FloorPlan::room_center(int index) const {
  UWB_EXPECTS(index >= 0 && index < room_count());
  const int ix = index % config.rooms_x;
  const int iy = index / config.rooms_x;
  return {(ix + 0.5) * config.room_w_m, (iy + 0.5) * config.room_h_m};
}

FloorPlan make_floor_plan(const FloorPlanConfig& config) {
  UWB_EXPECTS(config.rooms_x >= 1 && config.rooms_y >= 1);
  UWB_EXPECTS(config.room_w_m > 0.0 && config.room_h_m > 0.0);
  UWB_EXPECTS(config.doorway_m > 0.0 &&
              config.doorway_m < config.room_w_m &&
              config.doorway_m < config.room_h_m);
  UWB_EXPECTS(config.placement_margin_m >= 0.0 &&
              2.0 * config.placement_margin_m < config.room_w_m &&
              2.0 * config.placement_margin_m < config.room_h_m);

  FloorPlan plan;
  plan.config = config;
  plan.room = geom::Room::rectangular(config.room_w_m * config.rooms_x,
                                      config.room_h_m * config.rooms_y,
                                      config.outer_reflection_loss_db);
  for (int ix = 1; ix < config.rooms_x; ++ix) {
    add_partition(plan.room, /*vertical=*/true, config.room_w_m * ix,
                  config.rooms_y, config.room_h_m, config.doorway_m,
                  config.partition_loss_db,
                  "partition_x" + std::to_string(ix));
  }
  for (int iy = 1; iy < config.rooms_y; ++iy) {
    add_partition(plan.room, /*vertical=*/false, config.room_h_m * iy,
                  config.rooms_x, config.room_w_m, config.doorway_m,
                  config.partition_loss_db,
                  "partition_y" + std::to_string(iy));
  }
  return plan;
}

FloorPlanConfig plan_for_nodes(int node_count, double nodes_per_room) {
  UWB_EXPECTS(node_count >= 1);
  UWB_EXPECTS(nodes_per_room > 0.0);
  const int rooms = std::max(
      1, static_cast<int>(std::ceil(node_count / nodes_per_room)));
  FloorPlanConfig config;
  config.rooms_x =
      std::max(1, static_cast<int>(std::ceil(std::sqrt(rooms))));
  config.rooms_y = (rooms + config.rooms_x - 1) / config.rooms_x;
  return config;
}

std::vector<geom::Vec2> place_nodes(const FloorPlan& plan, int count,
                                    std::uint64_t seed) {
  UWB_EXPECTS(count >= 0);
  Rng rng(derive_seed(seed, kPlacementSeedStream));
  const FloorPlanConfig& c = plan.config;
  std::vector<geom::Vec2> out;
  out.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    const int room_index = i % plan.room_count();
    const int ix = room_index % c.rooms_x;
    const int iy = room_index / c.rooms_x;
    const double x = rng.uniform(c.room_w_m * ix + c.placement_margin_m,
                                 c.room_w_m * (ix + 1) - c.placement_margin_m);
    const double y = rng.uniform(c.room_h_m * iy + c.placement_margin_m,
                                 c.room_h_m * (iy + 1) - c.placement_margin_m);
    out.push_back({x, y});
  }
  return out;
}

}  // namespace uwb::sim
