// A simulated UWB node: DW1000 radio model + free-running clock + position.
//
// Exposes the firmware-level API the ranging protocols program against:
// enter/exit RX, immediate TX, delayed TX (with the hardware truncation),
// and an RX-complete callback delivering the decoded frame, the RX
// timestamp, and the superposed CIR estimate.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "common/random.hpp"
#include "dw1000/cir.hpp"
#include "dw1000/clock.hpp"
#include "dw1000/energy.hpp"
#include "dw1000/frame.hpp"
#include "dw1000/phy_config.hpp"
#include "dw1000/timestamping.hpp"
#include "geom/vec2.hpp"
#include "sim/medium.hpp"
#include "sim/simulator.hpp"

namespace uwb::sim {

struct NodeConfig {
  int id = 0;
  geom::Vec2 position;
  /// Clock epoch offset: where this node's 40-bit counter happens to be.
  SimTime clock_epoch_offset;
  /// Crystal drift [ppm]; DW1000-class crystals are trimmed to a few ppm.
  double drift_ppm = 0.0;
  dw::PhyConfig phy;
  dw::CirParams cir;
  dw::TimestampModelParams timestamping;
  /// Noise (1 sigma, ppm) of the carrier-frequency-offset estimate the
  /// receiver reports for drift compensation.
  double cfo_noise_ppm = 0.05;
  /// Tap index where the receiver anchors the sync frame's first path in
  /// the CIR window.
  int cir_anchor_taps = 64;
  /// Minimum SIR [dB] of the sync frame against the strongest other
  /// concurrent frame for its payload to decode. Preamble-locked
  /// demodulation is robust well below 0 dB — the feasibility study decoded
  /// payloads from equal-power concurrent responders.
  double decode_min_sir_db = -10.0;
  /// A concurrent frame this much stronger than the earliest one captures
  /// synchronisation (amplitude ratio). High by default: the receiver locks
  /// to the earliest detectable preamble of the aggregate (the CIR window
  /// and RMARKER anchor there); only gross power imbalance steals the lock.
  double capture_amplitude_ratio = 10.0;
  /// Model the hardware delayed-TX truncation (low 9 bits ignored). Turning
  /// this off is an ablation: ideal sub-tick transmit timing.
  bool delayed_tx_truncation = true;
  /// Physical antenna delay: the signal leaves/reaches the antenna this
  /// long after/before the digital timestamp reference. Uncalibrated
  /// devices carry ~515 ns (DW1000 default); ranging code must subtract the
  /// calibrated value (APS014) or every TWR distance is biased by
  /// c * (sum of delays) / 2. Zero by default so paper-reproduction
  /// experiments measure the algorithms, not the commissioning procedure.
  Seconds antenna_delay{};
};

/// Outcome of one receive operation (one frame, or one concurrent batch).
struct RxResult {
  /// Decoded payload of the frame the radio synchronised on; nullopt when
  /// the payload could not be decoded (CIR and timestamp remain valid).
  std::optional<dw::MacFrame> frame;
  /// Noisy device time of the sync frame's RMARKER arrival.
  dw::DwTimestamp rx_timestamp;
  /// Superposed CIR over all concurrent frames.
  dw::CirEstimate cir;
  /// Estimated remote-minus-local clock drift [ppm] (noisy).
  double carrier_offset_ppm = 0.0;
  /// Number of frames superposed in this batch.
  int frames_in_batch = 0;
  /// Node id of the sync (decoded) transmitter.
  int sync_tx_node_id = -1;
  /// Causal chain id of the sync frame (see AirFrame::chain); 0 when the
  /// flight recorder never tagged it. Sessions propagate it into the
  /// detect/twr/status events of the round.
  std::uint64_t sync_chain = 0;
  /// A sync payload existed but failed its frame check sequence (SIR too
  /// low against a colliding frame, or an injected CRC fault). `frame` is
  /// nullopt in that case; CIR and timestamp remain valid.
  bool crc_error = false;
  /// Transmitter node ids of every frame superposed in this batch (in
  /// arrival order) — lets sessions attribute per-responder outcomes.
  std::vector<int> batch_tx_node_ids;
  SimTime completed_at;
};

class Node {
 public:
  Node(Simulator& simulator, Medium& medium, NodeConfig config, Rng rng);

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  // --- protocol-facing API -------------------------------------------------

  /// Start listening now. The radio stays in RX until a frame (batch)
  /// completes or exit_rx() is called.
  void enter_rx();
  void exit_rx();
  bool in_rx() const { return rx_enabled_; }

  /// Transmit immediately (preamble starts now). Returns the exact device
  /// time of the TX RMARKER (the radio knows its own transmit time).
  dw::DwTimestamp transmit_now(const dw::MacFrame& frame);

  /// Delayed transmission: RMARKER at device time `rmarker_target`, subject
  /// to the hardware truncation (low 9 bits ignored). Returns the actual
  /// (quantised) RMARKER device time, which the caller may embed in the
  /// frame payload before it is sent.
  dw::DwTimestamp delayed_tx_time(dw::DwTimestamp rmarker_target) const;

  /// Schedule the (already quantised) delayed transmission. The frame is
  /// taken by value so the caller can embed `delayed_tx_time()` first.
  /// Returns false — and transmits nothing — when the radio aborts the
  /// delayed TX: the target already lies in the past (the DW1000 HPDWARN
  /// half-period warning; recoverable at run time, e.g. after a clock
  /// glitch) or an injected late-TX fault fires.
  [[nodiscard]] bool schedule_delayed_tx(dw::MacFrame frame,
                                         dw::DwTimestamp quantized_rmarker);

  void set_rx_handler(std::function<void(const RxResult&)> handler) {
    rx_handler_ = std::move(handler);
  }

  /// Current device time.
  dw::DwTimestamp device_now() const;

  /// Apply a clock anomaly: a crystal drift step [ppm] and/or a counter
  /// epoch jump [s] (fault injection, DESIGN.md Sect. 10). Takes effect for
  /// all subsequent timestamps.
  void apply_clock_glitch(double drift_step_ppm, double epoch_jump_s);

  // --- used by the Medium --------------------------------------------------

  void on_air_frame(AirFrame af);

  // --- accessors -----------------------------------------------------------

  int id() const { return config_.id; }
  geom::Vec2 position() const { return config_.position; }
  void set_position(geom::Vec2 p) {
    config_.position = p;
    medium_.invalidate_spatial_index();
  }
  const dw::PhyConfig& phy() const { return config_.phy; }
  void set_tc_pgdelay(std::uint8_t reg) { config_.phy.tc_pgdelay = reg; }
  const dw::ClockModel& clock() const { return clock_; }
  dw::EnergyMeter& energy() { return energy_; }
  const dw::EnergyMeter& energy() const { return energy_; }
  const NodeConfig& config() const { return config_; }

 private:
  /// Convert a duration measured on this node's clock to global time.
  SimTime local_duration(Seconds local) const;

  void transmit_at(const dw::MacFrame& frame, SimTime preamble_start_global);
  void finalize_batch();

  Simulator& sim_;
  Medium& medium_;
  NodeConfig config_;
  dw::ClockModel clock_;
  Rng rng_;
  dw::EnergyMeter energy_;

  bool rx_enabled_ = false;
  SimTime rx_since_;
  std::vector<AirFrame> pending_;
  std::function<void(const RxResult&)> rx_handler_;
};

}  // namespace uwb::sim
