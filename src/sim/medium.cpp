#include "sim/medium.hpp"

#include <algorithm>
#include <cmath>

#include "common/expects.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/obs.hpp"
#include "sim/node.hpp"

namespace uwb::sim {

namespace {

/// Stream index of one directed link inside a frame's seed space: the two
/// node ids packed into disjoint 32-bit lanes.
std::uint64_t link_stream(int tx_node_id, int rx_node_id) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(tx_node_id))
          << 32) |
         static_cast<std::uint64_t>(static_cast<std::uint32_t>(rx_node_id));
}

}  // namespace

Medium::Medium(Simulator& simulator, channel::ChannelModel model,
               MediumParams params, Rng rng)
    : sim_(simulator), model_(std::move(model)), params_(params),
      fanout_(obs::fanout_buckets()) {
  UWB_EXPECTS(params.detection_threshold_amp >= 0.0);
  // One draw anchors the whole per-(link, frame) seed hierarchy; the Rng
  // itself is not kept, so no shared mutable stream survives construction.
  channel_stream_base_ = rng.engine()();
  interference_radius_m_ =
      params_.interference_radius_m > 0.0
          ? params_.interference_radius_m
          : model_
                .max_detectable_range(params_.detection_threshold_amp,
                                      params_.range_margin_db)
                .value();
}

bool Medium::culling_active() const {
  return params_.culling_enabled && std::isfinite(interference_radius_m_) &&
         interference_radius_m_ > 0.0;
}

void Medium::register_node(Node& node) {
  const auto it = std::lower_bound(
      nodes_.begin(), nodes_.end(), node.id(),
      [](const Node* n, int id) { return n->id() < id; });
  UWB_EXPECTS(it == nodes_.end() || (*it)->id() != node.id());  // unique ids
  nodes_.insert(it, &node);
  spatial_dirty_ = true;
}

void Medium::ensure_spatial_index() {
  if (!spatial_dirty_) return;
  spatial_dirty_ = false;
  if (!culling_active()) {
    grid_ = geom::UniformGrid{};
    return;
  }
  std::vector<geom::Vec2> positions;
  positions.reserve(nodes_.size());
  for (const Node* n : nodes_) positions.push_back(n->position());
  grid_ = geom::UniformGrid(positions, interference_radius_m_);
}

const geom::UniformGrid& Medium::spatial_index() {
  ensure_spatial_index();
  return grid_;
}

CellTraffic& Medium::cell_traffic_entry(geom::CellKey key) {
  auto it = std::lower_bound(
      cell_traffic_.begin(), cell_traffic_.end(), key,
      [](const CellTraffic& c, geom::CellKey k) { return c.key < k; });
  if (it == cell_traffic_.end() || it->key != key) {
    it = cell_traffic_.insert(it, CellTraffic{key, 0, 0});
  }
  return *it;
}

// uwb-hot-path: runs once per (tx, candidate-rx) pair per frame — the
// medium's fan-out loop is the scale bottleneck (bench_ext_scale).
Medium::DeliverOutcome Medium::deliver(
    Node& rx, int tx_node_id, geom::Vec2 tx_pos, std::uint64_t frame_seed,
    const dw::MacFrame& frame, std::uint8_t tc_pgdelay, SimTime preamble_start,
    SimTime shr_sim, SimTime frame_sim, double tx_drift_ppm,
    fault::FaultInjector* injector, fault::AttackInjector* attack) {
  // Independent stream per (link, frame): the draw sequence of this link
  // cannot depend on which other receivers were realized before it.
  Rng link_rng(derive_seed(frame_seed, link_stream(tx_node_id, rx.id())));
  channel::ChannelRealization ch =
      model_.realize(tx_pos, rx.position(), link_rng);
  ++stats_.channels_realized;

  // The receiver's preamble detector locks to the earliest path that is
  // strong enough; frames with no detectable path are out of range.
  const channel::Tap* first = nullptr;
  double strongest_amp = 0.0;
  for (const channel::Tap& tap : ch.taps) {
    const double amp = std::abs(tap.amplitude);
    strongest_amp = std::max(strongest_amp, amp);
    if (amp >= params_.detection_threshold_amp) {
      first = &tap;
      break;
    }
  }
  if (first == nullptr) {
    ++stats_.below_threshold;
    UWB_FR_EVENT(.kind = obs::FrKind::kChannel, .name = "below_threshold",
                 .chain = frame_seed, .t_ps = preamble_start.ps(),
                 .node = rx.id(), .peer = tx_node_id,
                 .v0 = {"strongest_amp", strongest_amp},
                 .v1 = {"threshold_amp", params_.detection_threshold_amp});
    return DeliverOutcome::kBelowThreshold;
  }

  AirFrame af;
  af.tx_node_id = tx_node_id;
  af.chain = frame_seed;
  af.frame = frame;
  af.tc_pgdelay = tc_pgdelay;
  af.tx_drift_ppm = tx_drift_ppm;
  af.taps = std::move(ch.taps);
  af.first_detectable_delay = Seconds(first->delay_s);
  af.first_path_amplitude = std::abs(first->amplitude);
  af.preamble_start_arrival =
      preamble_start + SimTime::from_seconds(first->delay_s);
  af.rmarker_arrival = af.preamble_start_arrival + shr_sim;
  af.frame_end_arrival = af.preamble_start_arrival + frame_sim;
  if (injector != nullptr)
    af.preamble_missed =
        injector->miss_preamble(rx.id(), af.first_path_amplitude, frame_seed);

  // Ghost-peak attack: adversarial taps ahead of the legitimate first path.
  // Appended after the detectability scan on purpose — ghosts corrupt the
  // rendered CIR (where first-path search happens) without changing which
  // frames are deliverable, so a zero-strength plan stays byte-identical.
  // `first` points into af.taps' buffer and the push_back may reallocate
  // it, so the pointer is dead past this block — read the saved copies.
  if (attack != nullptr) {
    ghost_scratch_.clear();
    attack->ghost_taps(tx_node_id, rx.id(), frame_seed, first->delay_s,
                       af.first_path_amplitude, ghost_scratch_);
    af.taps.reserve(af.taps.size() + ghost_scratch_.size());
    for (const fault::GhostTap& g : ghost_scratch_)
      af.taps.push_back(channel::Tap{g.delay_s, g.amplitude, false, 0});
    first = nullptr;
  }

  UWB_FR_EVENT(.kind = obs::FrKind::kChannel, .name = "delivered",
               .chain = frame_seed, .t_ps = preamble_start.ps(),
               .node = rx.id(), .peer = tx_node_id,
               .v0 = {"first_path_amp", af.first_path_amplitude},
               .v1 = {"delay_s", af.first_detectable_delay.value()});

  if (delivery_probe_) delivery_probe_(rx.id(), af);

  Node* target = &rx;
  sim_.at(af.preamble_start_arrival, [target, af = std::move(af)]() mutable {
    target->on_air_frame(std::move(af));
  });
  ++stats_.frames_delivered;
  return DeliverOutcome::kDelivered;
}

void Medium::transmit(int tx_node_id, const dw::MacFrame& frame,
                      std::uint8_t tc_pgdelay, SimTime preamble_start,
                      Seconds shr_duration, Seconds frame_duration,
                      double tx_drift_ppm) {
  const auto tx_it = std::lower_bound(
      nodes_.begin(), nodes_.end(), tx_node_id,
      [](const Node* n, int id) { return n->id() < id; });
  UWB_EXPECTS(tx_it != nodes_.end() && (*tx_it)->id() == tx_node_id);
  const geom::Vec2 tx_pos = (*tx_it)->position();

  // Advance the frame stream unconditionally so culled and unculled runs
  // agree on every frame's seed.
  const std::uint64_t frame_seed =
      derive_seed(channel_stream_base_, frame_seq_++);
  ++stats_.frames_transmitted;

  // Root of this frame's causal chain: every downstream event (channel
  // decision, RX, fault, detect, status) carries frame_seed as its chain id.
  UWB_FR_EVENT(.kind = obs::FrKind::kTx, .name = "frame_tx",
               .chain = frame_seed, .t_ps = preamble_start.ps(),
               .node = tx_node_id,
               .v0 = {"frame_seq", static_cast<double>(frame_seq_ - 1)},
               .v1 = {"frame_duration_s", frame_duration.value()});

  // Loop-invariant across receivers: time conversions and the injectors.
  const SimTime shr_sim = to_sim_time(shr_duration);
  const SimTime frame_sim = to_sim_time(frame_duration);
  fault::FaultInjector* const injector = fault_;
  fault::AttackInjector* const attack = attack_;

  // Transmit-side manipulations apply once per frame, after the chain-root
  // frame_tx event so downstream attack events trace back to it: a
  // compromised transmitter overstates its carrier (biasing the victim's
  // CFO estimate) or swaps in a replayed pulse-shape register.
  double effective_drift_ppm = tx_drift_ppm;
  std::uint8_t effective_pgdelay = tc_pgdelay;
  if (attack != nullptr) {
    effective_drift_ppm += attack->cfo_spoof_ppm(tx_node_id, frame_seed);
    const int forged = attack->forged_shape_register(tx_node_id, frame_seed);
    if (forged >= 0) effective_pgdelay = static_cast<std::uint8_t>(forged);
  }

  std::uint64_t delivered = 0;
  std::uint64_t culled = 0;

  ensure_spatial_index();
  if (culling_active()) {
    candidates_.clear();
    grid_.neighborhood(tx_pos, candidates_);
    for (const std::int32_t idx : candidates_) {
      Node& rx = *nodes_[static_cast<std::size_t>(idx)];
      if (rx.id() == tx_node_id) continue;
      CellTraffic& traffic = cell_traffic_entry(grid_.key_of(rx.position()));
      if (deliver(rx, tx_node_id, tx_pos, frame_seed, frame,
                  effective_pgdelay, preamble_start, shr_sim, frame_sim,
                  effective_drift_ppm, injector,
                  attack) == DeliverOutcome::kDelivered) {
        ++delivered;
        ++traffic.delivered;
      } else {
        ++traffic.below_threshold;
      }
    }
    // Everything outside the 3x3 neighborhood is skipped wholesale —
    // account it per cell (cells, not nodes, so this stays O(occupied
    // cells) per frame).
    for (const geom::UniformGrid::Cell& cell : grid_.cells()) {
      if (grid_.in_neighborhood(tx_pos, cell.key)) continue;
      const auto n = static_cast<std::uint64_t>(cell.indices.size());
      culled += n;
      cell_traffic_entry(cell.key).culled += n;
      if (UWB_FR_ACTIVE()) {
        for (const std::int32_t idx : cell.indices) {
          const Node& rx = *nodes_[static_cast<std::size_t>(idx)];
          UWB_FR_EVENT(.kind = obs::FrKind::kChannel, .name = "culled",
                       .chain = frame_seed, .t_ps = preamble_start.ps(),
                       .node = rx.id(), .peer = tx_node_id,
                       .v0 = {"distance_m",
                              geom::distance(tx_pos, rx.position())},
                       .v1 = {"radius_m", interference_radius_m_});
        }
      }
    }
    stats_.receivers_culled += culled;
  } else {
    for (Node* rx : nodes_) {
      if (rx->id() == tx_node_id) continue;
      if (deliver(*rx, tx_node_id, tx_pos, frame_seed, frame,
                  effective_pgdelay, preamble_start, shr_sim, frame_sim,
                  effective_drift_ppm, injector,
                  attack) == DeliverOutcome::kDelivered) {
        ++delivered;
      }
    }
  }

  // First-class copy of the fan-out histogram: stays live in
  // UWB_OBS_DISABLED builds (the registry copy below compiles out).
  fanout_.observe(static_cast<double>(delivered));

  UWB_OBS_COUNT("medium_frames_delivered", delivered);
  UWB_OBS_COUNT("medium_receivers_culled", culled);
  UWB_OBS_HISTOGRAM("medium_frame_fanout", ::uwb::obs::fanout_buckets(),
                    delivered);
}

}  // namespace uwb::sim
