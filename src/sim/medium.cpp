#include "sim/medium.hpp"

#include <algorithm>

#include "common/expects.hpp"
#include "sim/node.hpp"

namespace uwb::sim {

Medium::Medium(Simulator& simulator, channel::ChannelModel model,
               MediumParams params, Rng rng)
    : sim_(simulator), model_(std::move(model)), params_(params),
      rng_(std::move(rng)) {
  UWB_EXPECTS(params.detection_threshold_amp >= 0.0);
}

void Medium::register_node(Node& node) {
  const auto [it, inserted] = nodes_.emplace(node.id(), &node);
  (void)it;
  UWB_EXPECTS(inserted);  // ids must be unique
}

void Medium::transmit(int tx_node_id, const dw::MacFrame& frame,
                      std::uint8_t tc_pgdelay, SimTime preamble_start,
                      Seconds shr_duration, Seconds frame_duration,
                      double tx_drift_ppm) {
  const auto tx_it = nodes_.find(tx_node_id);
  UWB_EXPECTS(tx_it != nodes_.end());
  const geom::Vec2 tx_pos = tx_it->second->position();

  for (auto& [rx_id, rx_node] : nodes_) {
    if (rx_id == tx_node_id) continue;
    channel::ChannelRealization ch =
        model_.realize(tx_pos, rx_node->position(), rng_);

    // The receiver's preamble detector locks to the earliest path that is
    // strong enough; frames with no detectable path are out of range.
    const channel::Tap* first = nullptr;
    for (const channel::Tap& tap : ch.taps) {
      if (std::abs(tap.amplitude) >= params_.detection_threshold_amp) {
        first = &tap;
        break;
      }
    }
    if (first == nullptr) continue;

    AirFrame af;
    af.tx_node_id = tx_node_id;
    af.frame = frame;
    af.tc_pgdelay = tc_pgdelay;
    af.tx_drift_ppm = tx_drift_ppm;
    af.taps = ch.taps;
    af.first_detectable_delay = Seconds(first->delay_s);
    af.first_path_amplitude = std::abs(first->amplitude);
    af.preamble_start_arrival =
        preamble_start + SimTime::from_seconds(first->delay_s);
    af.rmarker_arrival = af.preamble_start_arrival + to_sim_time(shr_duration);
    af.frame_end_arrival =
        af.preamble_start_arrival + to_sim_time(frame_duration);
    if (fault_ != nullptr)
      af.preamble_missed =
          fault_->miss_preamble(rx_id, af.first_path_amplitude);

    Node* target = rx_node;
    sim_.at(af.preamble_start_arrival,
            [target, af = std::move(af)]() mutable {
              target->on_air_frame(std::move(af));
            });
  }
}

}  // namespace uwb::sim
