#include "sim/medium.hpp"

#include <algorithm>
#include <cmath>

#include "common/expects.hpp"
#include "obs/obs.hpp"
#include "sim/node.hpp"

namespace uwb::sim {

namespace {

/// Stream index of one directed link inside a frame's seed space: the two
/// node ids packed into disjoint 32-bit lanes.
std::uint64_t link_stream(int tx_node_id, int rx_node_id) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(tx_node_id))
          << 32) |
         static_cast<std::uint64_t>(static_cast<std::uint32_t>(rx_node_id));
}

}  // namespace

Medium::Medium(Simulator& simulator, channel::ChannelModel model,
               MediumParams params, Rng rng)
    : sim_(simulator), model_(std::move(model)), params_(params) {
  UWB_EXPECTS(params.detection_threshold_amp >= 0.0);
  // One draw anchors the whole per-(link, frame) seed hierarchy; the Rng
  // itself is not kept, so no shared mutable stream survives construction.
  channel_stream_base_ = rng.engine()();
  interference_radius_m_ =
      params_.interference_radius_m > 0.0
          ? params_.interference_radius_m
          : model_
                .max_detectable_range(params_.detection_threshold_amp,
                                      params_.range_margin_db)
                .value();
}

bool Medium::culling_active() const {
  return params_.culling_enabled && std::isfinite(interference_radius_m_) &&
         interference_radius_m_ > 0.0;
}

void Medium::register_node(Node& node) {
  const auto it = std::lower_bound(
      nodes_.begin(), nodes_.end(), node.id(),
      [](const Node* n, int id) { return n->id() < id; });
  UWB_EXPECTS(it == nodes_.end() || (*it)->id() != node.id());  // unique ids
  nodes_.insert(it, &node);
  spatial_dirty_ = true;
}

void Medium::ensure_spatial_index() {
  if (!spatial_dirty_) return;
  spatial_dirty_ = false;
  if (!culling_active()) {
    grid_ = geom::UniformGrid{};
    return;
  }
  std::vector<geom::Vec2> positions;
  positions.reserve(nodes_.size());
  for (const Node* n : nodes_) positions.push_back(n->position());
  grid_ = geom::UniformGrid(positions, interference_radius_m_);
}

const geom::UniformGrid& Medium::spatial_index() {
  ensure_spatial_index();
  return grid_;
}

CellTraffic& Medium::cell_traffic_entry(geom::CellKey key) {
  auto it = std::lower_bound(
      cell_traffic_.begin(), cell_traffic_.end(), key,
      [](const CellTraffic& c, geom::CellKey k) { return c.key < k; });
  if (it == cell_traffic_.end() || it->key != key) {
    it = cell_traffic_.insert(it, CellTraffic{key, 0, 0});
  }
  return *it;
}

bool Medium::deliver(Node& rx, int tx_node_id, geom::Vec2 tx_pos,
                     std::uint64_t frame_seed, const dw::MacFrame& frame,
                     std::uint8_t tc_pgdelay, SimTime preamble_start,
                     SimTime shr_sim, SimTime frame_sim, double tx_drift_ppm,
                     fault::FaultInjector* injector) {
  // Independent stream per (link, frame): the draw sequence of this link
  // cannot depend on which other receivers were realized before it.
  Rng link_rng(derive_seed(frame_seed, link_stream(tx_node_id, rx.id())));
  channel::ChannelRealization ch =
      model_.realize(tx_pos, rx.position(), link_rng);
  ++stats_.channels_realized;

  // The receiver's preamble detector locks to the earliest path that is
  // strong enough; frames with no detectable path are out of range.
  const channel::Tap* first = nullptr;
  for (const channel::Tap& tap : ch.taps) {
    if (std::abs(tap.amplitude) >= params_.detection_threshold_amp) {
      first = &tap;
      break;
    }
  }
  if (first == nullptr) {
    ++stats_.below_threshold;
    return false;
  }

  AirFrame af;
  af.tx_node_id = tx_node_id;
  af.frame = frame;
  af.tc_pgdelay = tc_pgdelay;
  af.tx_drift_ppm = tx_drift_ppm;
  af.taps = std::move(ch.taps);
  af.first_detectable_delay = Seconds(first->delay_s);
  af.first_path_amplitude = std::abs(first->amplitude);
  af.preamble_start_arrival =
      preamble_start + SimTime::from_seconds(first->delay_s);
  af.rmarker_arrival = af.preamble_start_arrival + shr_sim;
  af.frame_end_arrival = af.preamble_start_arrival + frame_sim;
  if (injector != nullptr)
    af.preamble_missed =
        injector->miss_preamble(rx.id(), af.first_path_amplitude);

  if (delivery_probe_) delivery_probe_(rx.id(), af);

  Node* target = &rx;
  sim_.at(af.preamble_start_arrival, [target, af = std::move(af)]() mutable {
    target->on_air_frame(std::move(af));
  });
  ++stats_.frames_delivered;
  return true;
}

void Medium::transmit(int tx_node_id, const dw::MacFrame& frame,
                      std::uint8_t tc_pgdelay, SimTime preamble_start,
                      Seconds shr_duration, Seconds frame_duration,
                      double tx_drift_ppm) {
  const auto tx_it = std::lower_bound(
      nodes_.begin(), nodes_.end(), tx_node_id,
      [](const Node* n, int id) { return n->id() < id; });
  UWB_EXPECTS(tx_it != nodes_.end() && (*tx_it)->id() == tx_node_id);
  const geom::Vec2 tx_pos = (*tx_it)->position();

  // Advance the frame stream unconditionally so culled and unculled runs
  // agree on every frame's seed.
  const std::uint64_t frame_seed =
      derive_seed(channel_stream_base_, frame_seq_++);
  ++stats_.frames_transmitted;

  // Loop-invariant across receivers: time conversions and the injector.
  const SimTime shr_sim = to_sim_time(shr_duration);
  const SimTime frame_sim = to_sim_time(frame_duration);
  fault::FaultInjector* const injector = fault_;

  std::uint64_t delivered = 0;
  std::uint64_t culled = 0;

  ensure_spatial_index();
  if (culling_active()) {
    candidates_.clear();
    grid_.neighborhood(tx_pos, candidates_);
    for (const std::int32_t idx : candidates_) {
      Node& rx = *nodes_[static_cast<std::size_t>(idx)];
      if (rx.id() == tx_node_id) continue;
      if (deliver(rx, tx_node_id, tx_pos, frame_seed, frame, tc_pgdelay,
                  preamble_start, shr_sim, frame_sim, tx_drift_ppm,
                  injector)) {
        ++delivered;
        ++cell_traffic_entry(grid_.key_of(rx.position())).delivered;
      }
    }
    // Everything outside the 3x3 neighborhood is skipped wholesale —
    // account it per cell (cells, not nodes, so this stays O(occupied
    // cells) per frame).
    for (const geom::UniformGrid::Cell& cell : grid_.cells()) {
      if (grid_.in_neighborhood(tx_pos, cell.key)) continue;
      const auto n = static_cast<std::uint64_t>(cell.indices.size());
      culled += n;
      cell_traffic_entry(cell.key).culled += n;
    }
    stats_.receivers_culled += culled;
  } else {
    for (Node* rx : nodes_) {
      if (rx->id() == tx_node_id) continue;
      if (deliver(*rx, tx_node_id, tx_pos, frame_seed, frame, tc_pgdelay,
                  preamble_start, shr_sim, frame_sim, tx_drift_ppm,
                  injector)) {
        ++delivered;
      }
    }
  }

  UWB_OBS_COUNT("medium_frames_delivered", delivered);
  UWB_OBS_COUNT("medium_receivers_culled", culled);
  UWB_OBS_HISTOGRAM("medium_frame_fanout", ::uwb::obs::fanout_buckets(),
                    delivered);
}

}  // namespace uwb::sim
