// Discrete-event simulation kernel.
//
// Single-threaded event loop over integer-picosecond timestamps. Events
// scheduled for the same instant fire in scheduling order (a monotonic
// sequence number breaks ties), which keeps runs bit-reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/units.hpp"

namespace uwb::sim {

class Simulator {
 public:
  using Action = std::function<void()>;

  /// Schedule `fn` at absolute time `t` (must not be in the past).
  void at(SimTime t, Action fn);

  /// Schedule `fn` after `delay` from now.
  void after(SimTime delay, Action fn) { at(now_ + delay, std::move(fn)); }

  /// Run until the event queue is empty.
  void run();

  /// Run until simulated time reaches `t` (events at exactly `t` included).
  void run_until(SimTime t);

  SimTime now() const { return now_; }
  std::size_t pending() const { return queue_.size(); }
  std::uint64_t dispatched() const { return dispatched_; }

  /// Pre-size the event heap (large scenarios schedule thousands of
  /// deliveries per round; this avoids repeated regrowth).
  void reserve_events(std::size_t n) { queue_.reserve(n); }

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq = 0;
    Action fn;
    bool operator>(const Event& o) const {
      if (time != o.time) return time > o.time;
      return seq > o.seq;
    }
  };

  /// priority_queue with access to the underlying vector's capacity.
  struct EventQueue
      : std::priority_queue<Event, std::vector<Event>, std::greater<>> {
    void reserve(std::size_t n) { c.reserve(n); }
  };

  void dispatch_one();

  EventQueue queue_;
  SimTime now_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t dispatched_ = 0;
};

}  // namespace uwb::sim
