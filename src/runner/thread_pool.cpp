#include "runner/thread_pool.hpp"

#include <algorithm>
#include <utility>

#include "common/expects.hpp"

namespace uwb::runner {

namespace {

// Set while a worker thread runs its loop, so submit() from inside a task
// can keep the subtask on the submitting worker's own deque (the
// work-stealing fast path).
struct WorkerIdentity {
  const ThreadPool* pool = nullptr;
  std::size_t index = 0;
};
thread_local WorkerIdentity t_worker;

}  // namespace

int ThreadPool::hardware_threads() {
  return std::max(1u, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(int threads) {
  const int n = threads > 0 ? threads : hardware_threads();
  queues_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) queues_.push_back(std::make_unique<Worker>());
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    workers_.emplace_back(
        [this, i] { worker_loop(static_cast<std::size_t>(i)); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
  UWB_EXPECTS(task != nullptr);
  std::size_t target;
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    UWB_EXPECTS(!stopping_);
    ++queued_;
    ++in_flight_;
    target = t_worker.pool == this ? t_worker.index
                                   : next_queue_++ % queues_.size();
  }
  {
    Worker& w = *queues_[target];
    std::lock_guard<std::mutex> lock(w.mutex);
    w.tasks.push_back(std::move(task));
  }
  work_available_.notify_one();
}

bool ThreadPool::try_pop(std::size_t self, std::function<void()>& task) {
  const std::size_t n = queues_.size();
  {
    // Own deque: LIFO for cache locality.
    Worker& w = *queues_[self];
    std::lock_guard<std::mutex> lock(w.mutex);
    if (!w.tasks.empty()) {
      task = std::move(w.tasks.back());
      w.tasks.pop_back();
      return true;
    }
  }
  // Steal FIFO from siblings, starting just past ourselves so victims
  // spread evenly.
  for (std::size_t k = 1; k < n; ++k) {
    Worker& w = *queues_[(self + k) % n];
    std::lock_guard<std::mutex> lock(w.mutex);
    if (!w.tasks.empty()) {
      task = std::move(w.tasks.front());
      w.tasks.pop_front();
      return true;
    }
  }
  return false;
}

void ThreadPool::worker_loop(std::size_t self) {
  t_worker = {this, self};
  for (;;) {
    std::function<void()> task;
    if (try_pop(self, task)) {
      {
        std::lock_guard<std::mutex> lock(state_mutex_);
        --queued_;
      }
      try {
        task();
      } catch (...) {
        std::lock_guard<std::mutex> lock(state_mutex_);
        if (!first_error_) first_error_ = std::current_exception();
      }
      bool done;
      {
        std::lock_guard<std::mutex> lock(state_mutex_);
        done = --in_flight_ == 0;
      }
      if (done) all_done_.notify_all();
      continue;
    }
    std::unique_lock<std::mutex> lock(state_mutex_);
    work_available_.wait(lock, [this] { return stopping_ || queued_ > 0; });
    if (stopping_ && queued_ == 0) return;
  }
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(state_mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_error_) {
    std::exception_ptr error = std::exchange(first_error_, nullptr);
    std::rethrow_exception(error);
  }
}

}  // namespace uwb::runner
