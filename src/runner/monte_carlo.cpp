#include "runner/monte_carlo.hpp"

#include <algorithm>
#include <chrono>

#include "common/expects.hpp"
#include "common/random.hpp"
#include "dsp/stats.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "runner/thread_pool.hpp"
#include "runner/worker_context.hpp"

namespace uwb::runner {

void TrialRecorder::sample(std::string_view metric, double value) {
  samples_.emplace_back(std::string(metric), value);
}

void TrialRecorder::count(std::string_view counter, std::int64_t delta) {
  counts_.emplace_back(std::string(counter), delta);
}

namespace {

template <typename T>
std::size_t name_slot(std::vector<std::string>& names,
                      std::vector<T>& values, const std::string& name) {
  const auto it = std::find(names.begin(), names.end(), name);
  if (it != names.end())
    return static_cast<std::size_t>(it - names.begin());
  names.push_back(name);
  values.emplace_back();
  return names.size() - 1;
}

}  // namespace

void TrialResult::merge_in_order(std::vector<TrialRecorder>& records) {
  // Trial-index order makes the merge independent of which worker ran
  // which trial — the heart of the determinism contract.
  for (TrialRecorder& rec : records) {
    for (const auto& [name, value] : rec.samples_)
      metric_samples_[name_slot(metric_names_, metric_samples_, name)]
          .push_back(value);
    for (const auto& [name, delta] : rec.counts_)
      counter_values_[name_slot(counter_names_, counter_values_, name)] +=
          delta;
  }
}

const RVec& TrialResult::samples(std::string_view metric) const {
  static const RVec empty;
  for (std::size_t i = 0; i < metric_names_.size(); ++i)
    if (metric_names_[i] == metric) return metric_samples_[i];
  return empty;
}

std::int64_t TrialResult::counter(std::string_view counter) const {
  for (std::size_t i = 0; i < counter_names_.size(); ++i)
    if (counter_names_[i] == counter) return counter_values_[i];
  return 0;
}

MetricSummary TrialResult::summary(std::string_view metric) const {
  const RVec& xs = samples(metric);
  MetricSummary s;
  s.count = xs.size();
  if (xs.empty()) return s;
  s.mean = dsp::mean(xs);
  s.stddev = dsp::stddev(xs);
  s.min = *std::min_element(xs.begin(), xs.end());
  s.max = *std::max_element(xs.begin(), xs.end());
  s.p50 = dsp::percentile(xs, 50.0);
  s.p90 = dsp::percentile(xs, 90.0);
  s.p99 = dsp::percentile(xs, 99.0);
  return s;
}

MonteCarlo::MonteCarlo(Config config) : config_(config) {
  UWB_EXPECTS(config_.threads >= 0);
  UWB_EXPECTS(config_.chunk >= 0);
}

int MonteCarlo::threads() const {
  return config_.threads > 0 ? config_.threads
                             : ThreadPool::hardware_threads();
}

TrialResult MonteCarlo::run(int n_trials, const TrialFn& fn) const {
  UWB_EXPECTS(n_trials >= 0);
  UWB_EXPECTS(fn != nullptr);
  const auto start = std::chrono::steady_clock::now();

  std::vector<TrialRecorder> records(static_cast<std::size_t>(n_trials));
  const int workers = threads();
  UWB_OBS_GAUGE_SET("runner_threads", workers);

  const auto run_trial = [&](int i) {
    TrialContext ctx;
    ctx.trial_index = i;
    ctx.seed = derive_seed(config_.base_seed, static_cast<std::uint64_t>(i));
    ctx.worker = &WorkerContext::current();
    // Per-trial wall time lands in the worker's shard; the registry merge
    // yields one process-wide latency histogram (obs_trial_latency_* in the
    // bench JSON). Recorded through the Shard API, not the macros, so the
    // histogram exists even in UWB_OBS_DISABLED builds (tests rely on
    // count == n_trials regardless of build flavour).
    const std::uint64_t t0 = obs::monotonic_ns();
    {
      UWB_OBS_SPAN("trial");
      fn(ctx, records[static_cast<std::size_t>(i)]);
    }
    const double elapsed_ms =
        static_cast<double>(obs::monotonic_ns() - t0) / 1e6;
    ctx.worker->metrics()
        .histogram("trial_latency_ms", obs::latency_buckets_ms())
        .observe(elapsed_ms);
  };

  if (workers <= 1 || n_trials <= 1) {
    for (int i = 0; i < n_trials; ++i) run_trial(i);
  } else {
    // Small chunks keep the stealing granular enough to absorb uneven
    // trial costs; chunking only groups scheduling, never results.
    const int chunk =
        config_.chunk > 0
            ? config_.chunk
            : std::max(1, n_trials / (workers * 8));
    ThreadPool pool(workers);
    for (int begin = 0; begin < n_trials; begin += chunk) {
      const int end = std::min(n_trials, begin + chunk);
      pool.submit([&, begin, end] {
        for (int i = begin; i < end; ++i) run_trial(i);
      });
    }
    pool.wait_idle();
  }

  TrialResult result;
  result.trials_ = n_trials;
  result.threads_used_ = workers;
  result.merge_in_order(records);
  result.wall_ms_ = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start)
                        .count();
  return result;
}

}  // namespace uwb::runner
