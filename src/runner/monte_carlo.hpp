// Parallel Monte-Carlo experiment engine with a determinism contract.
//
// MonteCarlo::run(n_trials, fn) executes `fn` once per trial on a
// work-stealing thread pool. Each trial receives a seed derived purely
// from (base_seed, trial_index) via uwb::derive_seed, and records results
// into its own TrialRecorder; after the pool drains, the per-trial records
// are merged in trial-index order. Consequently the aggregate — every
// sample, every counter, bit for bit — is identical regardless of thread
// count or scheduling, which is what lets CI diff bench JSON across runs
// and machines.
//
// The trial function must draw all randomness from the provided seed and
// must not touch shared mutable state; everything else (scenario
// construction, detection, statistics) is per-trial. Expensive immutables
// are transparently reused across trials on one worker via thread-local
// caches (see WorkerContext).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"

namespace uwb::runner {

class WorkerContext;

/// Inputs handed to the trial function.
struct TrialContext {
  /// Trial number in [0, n_trials).
  int trial_index = 0;
  /// derive_seed(base_seed, trial_index) — the only randomness source a
  /// trial may use.
  std::uint64_t seed = 0;
  /// Per-thread caches of the worker executing this trial.
  WorkerContext* worker = nullptr;
};

/// Collects named samples and counters from one trial. Metric names are
/// free-form; trials may record different metrics (e.g. only sample an
/// error when the round decoded).
class TrialRecorder {
 public:
  /// Append one observation of `metric`.
  void sample(std::string_view metric, double value);

  /// Add `delta` to `counter`.
  void count(std::string_view counter, std::int64_t delta = 1);

 private:
  friend class MonteCarlo;
  friend class TrialResult;
  std::vector<std::pair<std::string, double>> samples_;
  std::vector<std::pair<std::string, std::int64_t>> counts_;
};

/// Descriptive statistics of one metric across all trials.
struct MetricSummary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
};

/// Aggregate of a Monte-Carlo run: per-metric sample vectors (in trial
/// order), counters, and wall-clock time.
class TrialResult {
 public:
  /// All samples of `metric`, ordered by trial index (empty if never
  /// recorded).
  const RVec& samples(std::string_view metric) const;

  /// Sum of all count() calls on `counter` (0 if never recorded).
  std::int64_t counter(std::string_view counter) const;

  /// mean/stddev/percentiles of `metric` via dsp/stats.
  MetricSummary summary(std::string_view metric) const;

  /// Metric names in first-recorded order (deterministic).
  const std::vector<std::string>& metric_names() const { return metric_names_; }
  /// Counter names in first-recorded order (deterministic).
  const std::vector<std::string>& counter_names() const {
    return counter_names_;
  }

  int trials() const { return trials_; }
  double wall_ms() const { return wall_ms_; }
  int threads_used() const { return threads_used_; }

 private:
  friend class MonteCarlo;
  void merge_in_order(std::vector<TrialRecorder>& records);

  std::vector<std::string> metric_names_;
  std::vector<RVec> metric_samples_;
  std::vector<std::string> counter_names_;
  std::vector<std::int64_t> counter_values_;
  int trials_ = 0;
  double wall_ms_ = 0.0;
  int threads_used_ = 1;
};

class MonteCarlo {
 public:
  struct Config {
    /// Worker threads; 0 = one per hardware thread, 1 = run inline on the
    /// calling thread (no pool).
    int threads = 0;
    /// Base seed of the run; trial i uses derive_seed(base_seed, i).
    std::uint64_t base_seed = 1;
    /// Trials per scheduled task (scheduling granularity only — never
    /// affects results). 0 = pick automatically.
    int chunk = 0;
  };

  MonteCarlo() : MonteCarlo(Config{}) {}
  explicit MonteCarlo(Config config);

  using TrialFn = std::function<void(const TrialContext&, TrialRecorder&)>;

  /// Run `n_trials` trials and aggregate. Rethrows the first exception any
  /// trial threw (after all scheduled work drained).
  TrialResult run(int n_trials, const TrialFn& fn) const;

  /// The worker count run() will use.
  int threads() const;

  const Config& config() const { return config_; }

 private:
  Config config_;
};

}  // namespace uwb::runner
