#include "runner/worker_context.hpp"

#include "dw1000/pulse.hpp"
#include "ranging/search_subtract.hpp"

namespace uwb::runner {

WorkerContext& WorkerContext::current() {
  thread_local WorkerContext context;
  return context;
}

const CVec& WorkerContext::pulse_template(std::uint8_t tc_pgdelay,
                                          double ts_s) const {
  return dw::cached_pulse_template(tc_pgdelay, ts_s);
}

const std::vector<geom::SpecularPath>& WorkerContext::specular_paths(
    const geom::Room& room, geom::Vec2 tx, geom::Vec2 rx,
    int max_order) const {
  return geom::compute_paths_cached(room, tx, rx, max_order);
}

obs::Shard& WorkerContext::metrics() const {
  return obs::MetricsRegistry::instance().local_shard();
}

WorkerContext::CacheStats WorkerContext::stats() const {
  const auto pulse = dw::pulse_cache_stats();
  const auto path = geom::path_cache_stats();
  const auto bank = ranging::SearchSubtractDetector::bank_cache_stats();
  CacheStats out;
  out.pulse_hits = pulse.hits;
  out.pulse_misses = pulse.misses;
  out.path_hits = path.hits;
  out.path_misses = path.misses;
  out.bank_hits = bank.hits;
  out.bank_misses = bank.misses;
  return out;
}

void WorkerContext::clear() const {
  dw::clear_pulse_cache();
  geom::clear_path_cache();
  ranging::SearchSubtractDetector::clear_bank_cache();
}

}  // namespace uwb::runner
