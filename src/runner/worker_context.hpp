// Per-worker-thread context for Monte-Carlo trials.
//
// The expensive immutables of a trial — pulse templates, matched-filter
// template banks (with their FFT spectra), and image-source path solves —
// are memoised in thread-local caches owned by the layer that computes
// them (dw1000/pulse, ranging/search_subtract, geom/image_source), so
// scenario construction per trial stops reallocating them. WorkerContext
// is the handle a trial gets to that per-thread state: typed accessors
// into the caches plus aggregated statistics, without the trial function
// having to know where each cache lives.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/types.hpp"
#include "geom/image_source.hpp"
#include "geom/room.hpp"
#include "obs/metrics.hpp"

namespace uwb::runner {

class WorkerContext {
 public:
  /// The calling thread's context (one per thread, created on first use).
  static WorkerContext& current();

  /// Memoised pulse template (see dw::cached_pulse_template). The
  /// reference stays valid for the thread's lifetime.
  const CVec& pulse_template(std::uint8_t tc_pgdelay, double ts_s) const;

  /// Memoised image-source solve (see geom::compute_paths_cached).
  const std::vector<geom::SpecularPath>& specular_paths(
      const geom::Room& room, geom::Vec2 tx, geom::Vec2 rx,
      int max_order = 1) const;

  /// Aggregated hit/miss counters of this thread's caches.
  struct CacheStats {
    std::size_t pulse_hits = 0;
    std::size_t pulse_misses = 0;
    std::size_t path_hits = 0;
    std::size_t path_misses = 0;
    std::size_t bank_hits = 0;
    std::size_t bank_misses = 0;
  };
  CacheStats stats() const;

  /// This worker thread's metrics shard (obs::MetricsRegistry). Trials
  /// record through it with plain non-atomic writes; the registry merges
  /// shards deterministically after the pool drains.
  obs::Shard& metrics() const;

  /// Drop every cache of the calling thread (tests / memory pressure).
  void clear() const;

 private:
  WorkerContext() = default;
};

}  // namespace uwb::runner
