// Work-stealing thread pool for the Monte-Carlo experiment engine.
//
// Each worker owns a deque: it pops its own work LIFO (cache-warm) and
// steals FIFO from its siblings when empty, so uneven trial costs (NLOS
// rounds take longer than LOS rounds) balance automatically. Exceptions
// thrown by tasks are captured and rethrown from wait_idle() — the pool
// never swallows a failure and never dies on one.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace uwb::runner {

class ThreadPool {
 public:
  /// Spawns `threads` workers (0 = one per hardware thread).
  explicit ThreadPool(int threads = 0);

  /// Joins all workers. Pending tasks are completed first.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  int thread_count() const { return static_cast<int>(workers_.size()); }

  /// Enqueue one task. Tasks may be submitted from any thread, including
  /// from within a running task (the submitting worker keeps it local).
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished. If any task threw, the
  /// first captured exception is rethrown here (once); the remaining tasks
  /// still ran to completion.
  void wait_idle();

  /// Hardware concurrency with a sane floor of 1.
  static int hardware_threads();

 private:
  struct Worker {
    std::deque<std::function<void()>> tasks;
    std::mutex mutex;
  };

  bool try_pop(std::size_t self, std::function<void()>& task);
  void worker_loop(std::size_t self);

  std::vector<std::unique_ptr<Worker>> queues_;
  std::vector<std::thread> workers_;

  std::mutex state_mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::size_t queued_ = 0;    // submitted, not yet started
  std::size_t in_flight_ = 0; // queued + running
  std::size_t next_queue_ = 0;
  bool stopping_ = false;
  std::exception_ptr first_error_;
};

}  // namespace uwb::runner
