// Command-line concurrent-ranging scenario runner.
//
//   ranging_cli [--responders N] [--slots S] [--shapes P] [--rounds R]
//               [--room WxH] [--seed X] [--ideal-tx] [--csv FILE]
//
// Places N responders on a ring around the initiator, runs R rounds, and
// prints per-responder statistics; optionally exports per-round estimates
// as CSV for plotting.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <numbers>
#include <string>

#include "common/csv.hpp"
#include "dsp/stats.hpp"
#include "ranging/session.hpp"

namespace {

using namespace uwb;

struct Options {
  int responders = 6;
  int slots = 4;
  int shapes = 3;
  int rounds = 50;
  double room_w = 20.0;
  double room_h = 12.0;
  std::uint64_t seed = 1;
  bool ideal_tx = false;
  std::string csv_path;
};

Options parse(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const auto is = [&](const char* flag) { return std::strcmp(argv[i], flag) == 0; };
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", argv[i]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (is("--responders")) opt.responders = std::atoi(next());
    else if (is("--slots")) opt.slots = std::atoi(next());
    else if (is("--shapes")) opt.shapes = std::atoi(next());
    else if (is("--rounds")) opt.rounds = std::atoi(next());
    else if (is("--seed")) opt.seed = static_cast<std::uint64_t>(std::atoll(next()));
    else if (is("--ideal-tx")) opt.ideal_tx = true;
    else if (is("--csv")) opt.csv_path = next();
    else if (is("--room")) {
      const std::string v = next();
      const auto x = v.find('x');
      if (x == std::string::npos) {
        std::fprintf(stderr, "--room expects WxH, e.g. 20x12\n");
        std::exit(2);
      }
      opt.room_w = std::atof(v.substr(0, x).c_str());
      opt.room_h = std::atof(v.substr(x + 1).c_str());
    } else {
      std::fprintf(stderr,
                   "usage: ranging_cli [--responders N] [--slots S] "
                   "[--shapes P] [--rounds R] [--room WxH] [--seed X] "
                   "[--ideal-tx] [--csv FILE]\n");
      std::exit(is("--help") || is("-h") ? 0 : 2);
    }
  }
  if (opt.responders < 1 || opt.rounds < 1 || opt.slots < 1 || opt.shapes < 1 ||
      opt.shapes > 3 || opt.room_w <= 2.0 || opt.room_h <= 2.0) {
    std::fprintf(stderr, "invalid option values\n");
    std::exit(2);
  }
  return opt;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse(argc, argv);

  ranging::ScenarioConfig cfg;
  cfg.room = geom::Room::rectangular(opt.room_w, opt.room_h, 10.0);
  cfg.initiator_position = {opt.room_w / 2.0, opt.room_h / 2.0};
  cfg.seed = opt.seed;
  cfg.delayed_tx_truncation = !opt.ideal_tx;
  cfg.ranging.num_slots = opt.slots;
  if (opt.slots > 1) cfg.ranging.slot_spacing_s = 150e-9;
  // Extract generously and collapse per identity (slot-aware extension).
  cfg.detect_max_responses = 2 * opt.responders;
  cfg.slot_aware_selection = true;
  const std::vector<std::uint8_t> all_shapes{0x93, 0xC8, 0xE6};
  cfg.ranging.shape_registers.assign(all_shapes.begin(),
                                     all_shapes.begin() + opt.shapes);
  if (opt.responders > cfg.ranging.max_responders()) {
    std::fprintf(stderr,
                 "%d responders exceed the %d addressable IDs of %d slots x "
                 "%d shapes\n",
                 opt.responders, cfg.ranging.max_responders(), opt.slots,
                 opt.shapes);
    return 2;
  }

  // Ring placement, radius bounded by the room.
  const double radius =
      0.35 * std::min(opt.room_w, opt.room_h);
  for (int i = 0; i < opt.responders; ++i) {
    const double ang =
        2.0 * std::numbers::pi * i / opt.responders + 0.3;
    cfg.responders.push_back(
        {i, {cfg.initiator_position.x + radius * (1.0 + 0.5 * (i % 3) / 2.0) *
                                            std::cos(ang) * 0.8,
             cfg.initiator_position.y + radius * std::sin(ang) * 0.8}});
  }

  ranging::ConcurrentRangingScenario scenario(cfg);
  std::unique_ptr<CsvWriter> csv;
  if (!opt.csv_path.empty()) {
    csv = std::make_unique<CsvWriter>(opt.csv_path);
    if (!csv->ok()) {
      std::fprintf(stderr, "cannot write %s\n", opt.csv_path.c_str());
      return 1;
    }
    csv->header({"round", "responder_id", "estimated_m", "true_m"});
  }

  std::map<int, RVec> errors;
  int decoded_rounds = 0;
  for (int r = 0; r < opt.rounds; ++r) {
    const auto out = scenario.run_round();
    if (!out.payload_decoded) continue;
    ++decoded_rounds;
    for (const auto& est : out.estimates) {
      if (est.responder_id < 0 || est.responder_id >= opt.responders) continue;
      const double truth = scenario.true_distance(est.responder_id);
      if (std::abs(est.distance_m - truth) < 2.0)
        errors[est.responder_id].push_back(est.distance_m - truth);
      if (csv)
        csv->row({static_cast<double>(r), static_cast<double>(est.responder_id),
                  est.distance_m, truth});
    }
  }

  std::printf("rounds decoded: %d / %d\n\n", decoded_rounds, opt.rounds);
  std::printf("%-6s %-12s %-10s %-12s %s\n", "ID", "true [m]", "seen",
              "bias [m]", "sigma [m]");
  for (int i = 0; i < opt.responders; ++i) {
    const double truth = scenario.true_distance(i);
    const auto it = errors.find(i);
    if (it == errors.end() || it->second.empty()) {
      std::printf("%-6d %-12.2f 0\n", i, truth);
      continue;
    }
    std::printf("%-6d %-12.2f %-10zu %-12.3f %.3f\n", i, truth,
                it->second.size(), dsp::mean(it->second),
                dsp::stddev(it->second));
  }
  if (csv)
    std::printf("\nwrote %zu rows to %s\n", csv->rows_written(),
                opt.csv_path.c_str());
  return 0;
}
