// Command-line concurrent-ranging scenario runner.
//
//   ranging_cli [--responders N] [--slots S] [--shapes P] [--rounds R]
//               [--room WxH] [--seed X] [--ideal-tx] [--csv FILE]
//               [--loss P] [--retries K]
//
// Places N responders on a ring around the initiator, runs R rounds, and
// prints per-responder statistics; optionally exports per-round estimates
// as CSV for plotting. --loss enables the fault injector (preamble miss /
// CRC / late-TX / dropout at probability P) and --retries bounded retry
// with deterministic backoff, demonstrating graceful degradation.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <numbers>
#include <string>

#include "common/csv.hpp"
#include "dsp/stats.hpp"
#include "example_util.hpp"
#include "ranging/session.hpp"

namespace {

using namespace uwb;

constexpr const char* kUsage =
    "ranging_cli [--responders N] [--slots S] [--shapes P] [--rounds R]\n"
    "            [--room WxH] [--seed X] [--ideal-tx] [--csv FILE]\n"
    "            [--loss P] [--retries K]";

struct Options {
  int responders = 6;
  int slots = 4;
  int shapes = 3;
  int rounds = 50;
  double room_w = 20.0;
  double room_h = 12.0;
  std::uint64_t seed = 1;
  bool ideal_tx = false;
  std::string csv_path;
  double loss = 0.0;
  int retries = 0;
};

Options parse(int argc, char** argv) {
  Options opt;
  examples::FlagParser p(argc, argv, kUsage);
  while (p.next()) {
    if (p.is("--responders")) opt.responders = static_cast<int>(p.int_value(1, 256));
    else if (p.is("--slots")) opt.slots = static_cast<int>(p.int_value(1, 64));
    else if (p.is("--shapes")) opt.shapes = static_cast<int>(p.int_value(1, 3));
    else if (p.is("--rounds")) opt.rounds = static_cast<int>(p.int_value(1, 1000000));
    else if (p.is("--seed")) opt.seed = p.seed_value();
    else if (p.is("--ideal-tx")) opt.ideal_tx = true;
    else if (p.is("--csv")) opt.csv_path = p.value();
    else if (p.is("--loss")) opt.loss = p.double_value(0.0, 1.0);
    else if (p.is("--retries")) opt.retries = static_cast<int>(p.int_value(0, 16));
    else if (p.is("--room")) {
      const std::string v = p.value();
      const auto x = v.find('x');
      if (x == std::string::npos)
        p.fail("--room expects WxH, e.g. 20x12, got '%s'", v.c_str());
      char* end = nullptr;
      opt.room_w = std::strtod(v.c_str(), &end);
      if (end != v.c_str() + x)
        p.fail("--room width is not a number: '%s'", v.c_str());
      opt.room_h = std::strtod(v.c_str() + x + 1, &end);
      if (*end != '\0')
        p.fail("--room height is not a number: '%s'", v.c_str());
      if (opt.room_w <= 2.0 || opt.room_h <= 2.0)
        p.fail("--room sides must exceed 2 m, got %gx%g", opt.room_w, opt.room_h);
    } else {
      p.unknown();
    }
  }
  return opt;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse(argc, argv);

  ranging::ScenarioConfig cfg;
  cfg.room = geom::Room::rectangular(opt.room_w, opt.room_h, 10.0);
  cfg.initiator_position = {opt.room_w / 2.0, opt.room_h / 2.0};
  cfg.seed = opt.seed;
  cfg.delayed_tx_truncation = !opt.ideal_tx;
  cfg.ranging.num_slots = opt.slots;
  if (opt.slots > 1) cfg.ranging.slot_spacing_s = 150e-9;
  // Extract generously and collapse per identity (slot-aware extension).
  cfg.detect_max_responses = 2 * opt.responders;
  cfg.slot_aware_selection = true;
  const std::vector<std::uint8_t> all_shapes{0x93, 0xC8, 0xE6};
  cfg.ranging.shape_registers.assign(all_shapes.begin(),
                                     all_shapes.begin() + opt.shapes);
  if (opt.loss > 0.0) {
    cfg.fault.enabled = true;
    cfg.fault.preamble_miss_prob = opt.loss;
    cfg.fault.crc_error_prob = opt.loss / 4.0;
    cfg.fault.late_tx_abort_prob = opt.loss / 4.0;
    cfg.fault.dropout_prob = opt.loss / 8.0;
  }
  cfg.resilience.max_retries = opt.retries;

  // Ring placement, radius bounded by the room.
  const double radius =
      0.35 * std::min(opt.room_w, opt.room_h);
  for (int i = 0; i < opt.responders; ++i) {
    const double ang =
        2.0 * std::numbers::pi * i / opt.responders + 0.3;
    cfg.responders.push_back(
        {i, {cfg.initiator_position.x + radius * (1.0 + 0.5 * (i % 3) / 2.0) *
                                            std::cos(ang) * 0.8,
             cfg.initiator_position.y + radius * std::sin(ang) * 0.8}});
  }

  // The Status path reports bad configurations (e.g. more responders than
  // the slot/shape plan can address) as a clear message, not an abort.
  auto created = ranging::ConcurrentRangingScenario::create(std::move(cfg));
  if (!created.ok()) {
    std::fprintf(stderr, "invalid configuration: %s\n",
                 created.status().message().c_str());
    return 2;
  }
  ranging::ConcurrentRangingScenario& scenario = *created.value();

  std::unique_ptr<CsvWriter> csv;
  if (!opt.csv_path.empty()) {
    csv = std::make_unique<CsvWriter>(opt.csv_path);
    if (!csv->ok()) {
      std::fprintf(stderr, "cannot write %s\n", opt.csv_path.c_str());
      return 1;
    }
    csv->header({"round", "responder_id", "estimated_m", "true_m"});
  }

  std::map<int, RVec> errors;
  std::map<int, int> status_ok;
  int decoded_rounds = 0;
  for (int r = 0; r < opt.rounds; ++r) {
    const auto out = scenario.run_round();
    for (const auto& rep : out.responder_reports)
      if (rep.status == ranging::RangingStatus::kOk) ++status_ok[rep.id];
    if (!out.payload_decoded) continue;
    ++decoded_rounds;
    for (const auto& est : out.estimates) {
      if (est.responder_id < 0 || est.responder_id >= opt.responders) continue;
      const double truth = scenario.true_distance(est.responder_id).value();
      if (std::abs(est.distance_m - truth) < 2.0)
        errors[est.responder_id].push_back(est.distance_m - truth);
      if (csv)
        csv->row({static_cast<double>(r), static_cast<double>(est.responder_id),
                  est.distance_m, truth});
    }
  }

  std::printf("rounds decoded: %d / %d\n\n", decoded_rounds, opt.rounds);
  std::printf("%-6s %-12s %-10s %-12s %s\n", "ID", "true [m]", "seen",
              "bias [m]", "sigma [m]");
  for (int i = 0; i < opt.responders; ++i) {
    const double truth = scenario.true_distance(i).value();
    const auto it = errors.find(i);
    if (it == errors.end() || it->second.empty()) {
      std::printf("%-6d %-12.2f 0\n", i, truth);
      continue;
    }
    std::printf("%-6d %-12.2f %-10zu %-12.3f %.3f\n", i, truth,
                it->second.size(), dsp::mean(it->second),
                dsp::stddev(it->second));
  }

  const auto& stats = scenario.stats();
  if (scenario.fault_injector() != nullptr) {
    const auto& fc = scenario.fault_injector()->counters();
    std::printf("\nresilience: %llu retries, %llu degraded rounds, "
                "%llu failed rounds\n",
                static_cast<unsigned long long>(stats.retry_attempts),
                static_cast<unsigned long long>(stats.degraded_rounds),
                static_cast<unsigned long long>(stats.failed_rounds));
    std::printf("injected faults: %llu preamble, %llu crc, %llu late-tx, "
                "%llu dropout rounds\n",
                static_cast<unsigned long long>(fc.preamble_miss),
                static_cast<unsigned long long>(fc.crc_error),
                static_cast<unsigned long long>(fc.late_tx_abort),
                static_cast<unsigned long long>(fc.dropout_rounds));
    std::printf("per-responder ok rate:");
    for (int i = 0; i < opt.responders; ++i)
      std::printf(" %d:%d/%d", i, status_ok[i], opt.rounds);
    std::printf("\n");
  }

  if (csv)
    std::printf("\nwrote %zu rows to %s\n", csv->rows_written(),
                opt.csv_path.c_str());
  return 0;
}
