// Building-scale demo: a generated multi-room floor plan with one hundred
// responders on the spatially-sharded medium (DESIGN.md Sect. 13). The
// interference radius derived from the through-building channel is far
// smaller than the floor, so the medium only realizes channels inside the
// initiator's grid neighborhood — the per-cell traffic table at the end
// shows the work the shards skipped.
#include <cstdio>

#include "example_util.hpp"
#include "geom/grid.hpp"
#include "ranging/session.hpp"
#include "sim/floorplan.hpp"

int main(int argc, char** argv) {
  using namespace uwb;

  std::uint64_t seed = 7;
  int responders = 100;
  int rounds = 3;
  examples::FlagParser p(argc, argv,
                         "building_scale [--seed X] [--responders N] "
                         "[--rounds R]");
  while (p.next()) {
    if (p.is("--seed")) seed = p.seed_value();
    else if (p.is("--responders")) responders = static_cast<int>(p.int_value(1, 255));
    else if (p.is("--rounds")) rounds = static_cast<int>(p.int_value(1, 100));
    else p.unknown();
  }

  // One responder per room; the initiator sits at the building centre.
  const sim::FloorPlan plan =
      sim::make_floor_plan(sim::plan_for_nodes(responders + 1, 1.0));
  const auto positions = sim::place_nodes(plan, responders + 1, seed);

  ranging::ScenarioConfig cfg;
  cfg.room = plan.room;
  cfg.channel.path_loss_exponent = 3.5;  // through-building decay
  cfg.channel.max_reflection_order = 0;
  cfg.medium.detection_threshold_amp = 0.05;
  cfg.initiator_position = plan.center();
  for (int i = 0; i < responders; ++i)
    cfg.responders.push_back({i, positions[static_cast<std::size_t>(i)]});
  cfg.ranging.num_slots = 64;
  cfg.ranging.slot_spacing_s = 150e-9;
  cfg.ranging.shape_registers = {0x93, 0xB8, 0xC8, 0xE0};
  cfg.detect_max_responses = 12;
  cfg.slot_aware_selection = true;
  cfg.seed = seed;
  ranging::ConcurrentRangingScenario scenario(cfg);

  std::printf("floor plan: %d x %d rooms (%.0f x %.0f m), %d responders\n",
              plan.config.rooms_x, plan.config.rooms_y, plan.width_m(),
              plan.height_m(), responders);
  std::printf("interference radius: %.1f m (culling %s)\n\n",
              scenario.medium().interference_radius_m(),
              scenario.medium().culling_active() ? "active" : "inactive");

  for (int r = 0; r < rounds; ++r) {
    const auto out = scenario.run_round();
    std::printf("round %d: %s, %zu estimates\n", r + 1,
                out.payload_decoded ? "decoded" : "no decode",
                out.estimates.size());
    for (const auto& est : out.estimates) {
      // Ghost detections can decode to slot/shape pairs with no configured
      // responder behind them.
      if (est.responder_id < 0 || est.responder_id >= responders) continue;
      std::printf("  responder %-3d  %.2f m (true %.2f m)\n",
                  est.responder_id, est.distance_m,
                  scenario.true_distance(est.responder_id).value());
    }
  }

  // What the sharded medium did — and skipped — per grid cell.
  const auto& stats = scenario.medium().stats();
  std::printf("\nmedium: %llu frames, %llu channels realized, "
              "%llu receivers culled\n",
              static_cast<unsigned long long>(stats.frames_transmitted),
              static_cast<unsigned long long>(stats.channels_realized),
              static_cast<unsigned long long>(stats.receivers_culled));
  std::printf("%-12s %-12s %s\n", "cell", "delivered", "culled");
  for (const sim::CellTraffic& c : scenario.medium().cell_traffic())
    std::printf("(%3d,%3d)    %-12llu %llu\n",
                geom::UniformGrid::cell_ix(c.key),
                geom::UniformGrid::cell_iy(c.key),
                static_cast<unsigned long long>(c.delivered),
                static_cast<unsigned long long>(c.culled));
  return 0;
}
