// Scalability demo: nine responders identified in a single round by
// combining response position modulation (4 slots) with pulse shaping
// (3 shapes) — the paper's Fig. 8 configuration — plus the capacity maths
// for larger deployments.
#include <cmath>
#include <cstdio>

#include "common/constants.hpp"
#include "example_util.hpp"
#include "ranging/capacity.hpp"
#include "ranging/session.hpp"

int main(int argc, char** argv) {
  using namespace uwb;

  std::uint64_t seed = 105;
  examples::FlagParser p(argc, argv, "scalability_demo [--seed X]");
  while (p.next()) {
    if (p.is("--seed")) seed = p.seed_value();
    else p.unknown();
  }

  ranging::ScenarioConfig cfg;
  cfg.room = geom::Room::rectangular(16.0, 10.0, 10.0);
  cfg.initiator_position = {1.0, 5.0};
  cfg.seed = seed;
  cfg.ranging.num_slots = 4;
  cfg.ranging.slot_spacing_s = 150e-9;
  cfg.ranging.shape_registers = {0x93, 0xC8, 0xE6};
  cfg.responders = {
      {0, {4.0, 5.0}},  {1, {6.5, 3.0}},  {2, {9.0, 7.0}},
      {3, {11.0, 4.0}}, {4, {5.5, 7.5}},  {5, {8.0, 2.5}},
      {6, {12.5, 6.5}}, {7, {14.0, 5.0}}, {8, {7.0, 5.5}},
  };
  ranging::ConcurrentRangingScenario scenario(cfg);

  std::printf("combined RPM x pulse shaping: %d slots x %d shapes = %d IDs\n\n",
              cfg.ranging.num_slots, cfg.ranging.num_pulse_shapes(),
              cfg.ranging.max_responders());

  const auto out = scenario.run_round();
  if (!out.payload_decoded) {
    std::printf("round failed\n");
    return 1;
  }
  std::printf("%zu responses extracted from one CIR:\n\n", out.estimates.size());
  std::printf("%-6s %-6s %-8s %-14s %s\n", "ID", "slot", "shape",
              "distance [m]", "true [m]");
  for (const auto& est : out.estimates) {
    if (est.responder_id < 0) continue;
    std::printf("%-6d %-6d s%-7d %-14.2f %.2f\n", est.responder_id, est.slot,
                est.shape_index + 1, est.distance_m,
                scenario.true_distance(est.responder_id).value());
  }

  // Capacity for bigger deployments (paper Sect. VIII).
  const dw::PhyConfig phy;
  std::printf("\ncapacity with all %d pulse shapes:\n", k::num_pulse_shapes);
  for (const double r : {20.0, 75.0}) {
    const int slots = ranging::rpm_slots_paper(phy, r);
    std::printf("  r_max = %3.0f m: %2d slots -> up to %d concurrent responders\n",
                r, slots,
                ranging::max_concurrent_responders(slots, k::num_pulse_shapes));
  }
  return 0;
}
