// Anchor-based indoor localisation on top of concurrent ranging — the
// paper's stated future work, working end to end.
//
// A tag walks a path through a 12 x 8 m office. Four wall anchors answer
// every broadcast simultaneously (4 RPM slots), so each position fix costs
// the tag exactly one transmit and one receive operation.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "dw1000/energy.hpp"
#include "example_util.hpp"
#include "loc/anchor_system.hpp"
#include "loc/tracker.hpp"
#include "ranging/capacity.hpp"

int main(int argc, char** argv) {
  using namespace uwb;

  std::uint64_t seed = 7;
  double step_m = 0.4;
  examples::FlagParser p(argc, argv,
                         "office_localization [--seed X] [--step M]");
  while (p.next()) {
    if (p.is("--seed")) seed = p.seed_value();
    else if (p.is("--step")) step_m = p.double_value(0.05, 5.0);
    else p.unknown();
  }

  loc::AnchorSystemConfig cfg;
  cfg.scenario.room = geom::Room::rectangular(12.0, 8.0, 10.0);
  cfg.scenario.seed = seed;
  cfg.scenario.ranging.num_slots = 4;
  cfg.scenario.ranging.slot_spacing_s = 120e-9;
  cfg.scenario.responders = {
      {0, {0.5, 0.5}},   // anchor A, slot 0
      {1, {11.5, 0.5}},  // anchor B, slot 1
      {2, {11.5, 7.5}},  // anchor C, slot 2
      {3, {0.5, 7.5}},   // anchor D, slot 3
  };
  loc::AnchorLocalizer localizer(cfg);

  // The tag walks at ~1 m/s with 2.5 fixes per second (concurrent ranging
  // makes high fix rates cheap: one TX+RX each).
  std::printf("tag walking a path, %.1f m between fixes:\n\n", step_m);
  const geom::Vec2 waypoints[] = {{2.0, 2.0}, {6.0, 4.0}, {10.0, 6.0},
                                  {9.0, 3.0}, {6.0, 2.0}, {3.5, 5.5}};
  std::vector<geom::Vec2> path;
  for (std::size_t w = 0; w + 1 < std::size(waypoints); ++w) {
    const geom::Vec2 a = waypoints[w], b = waypoints[w + 1];
    const int steps =
        std::max(1, static_cast<int>(geom::distance(a, b) / step_m));
    for (int s = 0; s < steps; ++s)
      path.push_back(a + (b - a) * (static_cast<double>(s) / steps));
  }
  path.push_back(waypoints[std::size(waypoints) - 1]);

  loc::PositionTracker tracker;  // alpha-beta smoothing across fixes
  int fixes = 0;
  double total_err = 0.0, total_tracked_err = 0.0;
  for (const geom::Vec2 p : path) {
    const loc::Fix fix = localizer.locate(p);
    if (!fix.ok) continue;
    ++fixes;
    total_err += fix.error_m;
    const geom::Vec2 tracked = tracker.update(fix.position, step_m);
    total_tracked_err += geom::distance(tracked, p);
  }
  std::printf("fixes            : %d / %zu path points\n", fixes, path.size());
  if (fixes > 0) {
    std::printf("mean error (raw fixes)      : %.3f m\n", total_err / fixes);
    std::printf("mean error (alpha-beta)     : %.3f m\n",
                total_tracked_err / fixes);
  }

  // What the tag saves per fix compared to scheduled SS-TWR.
  const dw::PhyConfig phy;
  const dw::EnergyModelParams energy;
  const auto twr = ranging::twr_round_cost(4, phy, 290e-6, energy);
  const auto conc = ranging::concurrent_round_cost(4, phy, 290e-6, energy);
  std::printf("tag energy per fix: %.3f mJ concurrent vs %.3f mJ SS-TWR (%.1fx)\n",
              conc.initiator_j * 1e3, twr.initiator_j * 1e3,
              twr.initiator_j / conc.initiator_j);
  return 0;
}
