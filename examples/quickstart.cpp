// Quickstart: one concurrent-ranging round with three responders.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
// An initiator broadcasts a single INIT; all three responders answer
// simultaneously 290 us later; the initiator's superposed CIR yields the
// distance to every responder from ONE transmit + ONE receive operation.
#include <cstdio>

#include "ranging/session.hpp"

int main() {
  using namespace uwb;

  // 1. Describe the environment: a 40 m hallway, nodes slightly off-centre.
  ranging::ScenarioConfig cfg;
  cfg.room = geom::Room::hallway(40.0, 2.4, /*reflection_loss_db=*/15.0);
  cfg.initiator_position = {2.0, 1.0};

  // 2. Place the responders (IDs select RPM slots / pulse shapes; with the
  //    default config all respond in the same slot with the same shape).
  cfg.responders = {
      {0, {5.0, 1.0}},   // 3 m away
      {1, {8.0, 1.0}},   // 6 m away
      {2, {12.0, 1.0}},  // 10 m away
  };
  cfg.seed = 42;

  // 3. Run one round.
  ranging::ConcurrentRangingScenario scenario(cfg);
  const ranging::RoundOutcome out = scenario.run_round();

  if (!out.payload_decoded) {
    std::printf("round failed: no decodable response\n");
    return 1;
  }

  std::printf("concurrent ranging round complete\n");
  std::printf("  frames superposed in one reception : %d\n", out.frames_in_batch);
  std::printf("  SS-TWR distance to decoded responder: %.3f m\n\n", out.d_twr_m);

  std::printf("  %-10s %-14s %s\n", "response", "distance [m]", "true [m]");
  for (std::size_t i = 0; i < out.estimates.size(); ++i) {
    std::printf("  %-10zu %-14.3f %.1f\n", i + 1, out.estimates[i].distance_m,
                scenario.true_distance(static_cast<int>(i)).value());
  }

  std::printf(
      "\nmessage cost: 1 TX + 1 RX at the initiator (classical SS-TWR would\n"
      "need %zu transmissions and %zu receptions).\n",
      cfg.responders.size(), cfg.responders.size());
  return 0;
}
