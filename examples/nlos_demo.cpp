// NLOS demo: a responder whose direct path is attenuated by an obstacle is
// still found by the amplitude-independent search-and-subtract detector —
// the situation (open challenge IV) where power-boundary heuristics break.
#include <cmath>
#include <cstdio>

#include "example_util.hpp"
#include "ranging/session.hpp"

int main(int argc, char** argv) {
  using namespace uwb;

  std::uint64_t seed = 11;
  int rounds = 50;
  examples::FlagParser p(argc, argv, "nlos_demo [--seed X] [--rounds R]");
  while (p.next()) {
    if (p.is("--seed")) seed = p.seed_value();
    else if (p.is("--rounds")) rounds = static_cast<int>(p.int_value(1, 100000));
    else p.unknown();
  }

  ranging::ScenarioConfig cfg;
  cfg.room = geom::Room::rectangular(14.0, 8.0, 12.0);
  // A cabinet blocks the line of sight to responder 1 only.
  cfg.room.add_obstacle({{{7.0, 3.2}, {7.0, 4.8}}, 9.0, "cabinet"});
  cfg.initiator_position = {2.0, 4.0};
  cfg.responders = {
      {0, {5.0, 4.0}},   // 3 m, clear
      {1, {10.0, 4.0}},  // 8 m, obstructed (-9 dB on the direct path)
  };
  cfg.detect_max_responses = 4;  // surface the weak response behind MPCs
  cfg.seed = seed;
  ranging::ConcurrentRangingScenario scenario(cfg);

  int found = 0, decoded = 0;
  double err_sum = 0.0;
  for (int t = 0; t < rounds; ++t) {
    const auto out = scenario.run_round();
    if (!out.payload_decoded) continue;
    ++decoded;
    for (std::size_t i = 1; i < out.estimates.size(); ++i) {
      if (std::abs(out.estimates[i].distance_m - 8.0) < 1.0) {
        ++found;
        err_sum += out.estimates[i].distance_m - 8.0;
        break;
      }
    }
  }

  std::printf("obstructed responder (8 m, direct path -9 dB):\n");
  std::printf("  found in %d / %d rounds (amplitude-independent detection)\n",
              found, decoded);
  if (found > 0)
    std::printf("  mean distance bias: %+.3f m\n", err_sum / found);
  std::printf(
      "\nA Friis power-boundary filter would reject this response: its\n"
      "amplitude is ~9 dB below the free-space prediction for 8 m. The\n"
      "rank-based detector keeps it because detection never depends on\n"
      "absolute amplitudes (paper Sect. IV).\n");
  return 0;
}
