// Small validated flag parser shared by the examples.
//
// Every numeric flag is parsed with full-string validation (no silent
// atoi()-style truncation of garbage to 0) and checked against an explicit
// range; violations print the offending flag, the accepted range, and the
// example's usage string, then exit(2). Keeps the examples honest without
// dragging in a real CLI library.
#pragma once

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

namespace uwb::examples {

class FlagParser {
 public:
  /// `usage` is printed on any parse error and for --help/-h.
  FlagParser(int argc, char** argv, std::string usage)
      : argc_(argc), argv_(argv), usage_(std::move(usage)) {}

  /// True while arguments remain; advances to the next one.
  bool next() { return ++i_ < argc_; }

  /// Current argument equals `flag`.
  bool is(const char* flag) const { return std::strcmp(argv_[i_], flag) == 0; }

  const char* current() const { return argv_[i_]; }

  /// Consume the value of the current flag; dies if none follows.
  const char* value() {
    if (i_ + 1 >= argc_) fail("missing value for %s", argv_[i_]);
    return argv_[++i_];
  }

  /// Consume and parse an integer value in [lo, hi].
  long int_value(long lo, long hi) {
    const char* flag = argv_[i_];
    const char* v = value();
    char* end = nullptr;
    errno = 0;
    const long parsed = std::strtol(v, &end, 10);
    if (errno != 0 || end == v || *end != '\0')
      fail("%s expects an integer, got '%s'", flag, v);
    if (parsed < lo || parsed > hi)
      fail("%s must be in [%ld, %ld], got %ld", flag, lo, hi, parsed);
    return parsed;
  }

  /// Consume and parse a floating-point value in [lo, hi].
  double double_value(double lo, double hi) {
    const char* flag = argv_[i_];
    const char* v = value();
    char* end = nullptr;
    errno = 0;
    const double parsed = std::strtod(v, &end);
    if (errno != 0 || end == v || *end != '\0')
      fail("%s expects a number, got '%s'", flag, v);
    if (!(parsed >= lo && parsed <= hi))
      fail("%s must be in [%g, %g], got %g", flag, lo, hi, parsed);
    return parsed;
  }

  /// Consume and parse a non-negative seed.
  unsigned long long seed_value() {
    const char* flag = argv_[i_];
    const char* v = value();
    char* end = nullptr;
    errno = 0;
    const unsigned long long parsed = std::strtoull(v, &end, 10);
    if (errno != 0 || end == v || *end != '\0' || v[0] == '-')
      fail("%s expects a non-negative integer, got '%s'", flag, v);
    return parsed;
  }

  /// Handle an argument no flag matched: --help prints usage and exits 0,
  /// anything else is an error.
  [[noreturn]] void unknown() {
    const bool help = is("--help") || is("-h");
    std::fprintf(help ? stdout : stderr, "usage: %s\n", usage_.c_str());
    std::exit(help ? 0 : 2);
  }

  template <typename... Args>
  [[noreturn]] void fail(const char* fmt, Args... args) {
    std::fprintf(stderr, fmt, args...);
    std::fprintf(stderr, "\nusage: %s\n", usage_.c_str());
    std::exit(2);
  }

 private:
  int argc_;
  char** argv_;
  std::string usage_;
  int i_ = 0;
};

}  // namespace uwb::examples
