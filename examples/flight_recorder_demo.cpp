// Flight-recorder demo: run a lossy multi-responder session with retries,
// record every frame's causal chain, and export the recording as JSONL for
// the post-mortem explain pipeline.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/flight_recorder_demo --flight-record recording.jsonl
//   python3 tools/explain_session.py recording.jsonl --list
//   python3 tools/explain_session.py recording.jsonl
//       --session <hex> --round <n> --responder <id>
//
// Flags:
//   --flight-record FILE  write the JSONL recording (default: off, the
//                         session still runs and prints statuses)
//   --seed N              scenario seed (default 7001)
//   --loss P              fault loss level in [0, 1] (default 0.3)
//   --rounds N            rounds to run (default 4)
//   --responders N        responder count in [1, 8] (default 4)
#include <cmath>
#include <cstdio>
#include <numbers>
#include <string>

#include "example_util.hpp"
#include "obs/flight_recorder.hpp"
#include "ranging/session.hpp"

int main(int argc, char** argv) {
  using namespace uwb;

  std::string record_path;
  unsigned long long seed = 7001;
  double loss = 0.3;
  long rounds = 4;
  long responders = 4;

  examples::FlagParser flags(
      argc, argv,
      "flight_recorder_demo [--flight-record FILE] [--seed N] [--loss P] "
      "[--rounds N] [--responders N]");
  while (flags.next()) {
    if (flags.is("--flight-record")) {
      record_path = flags.value();
    } else if (flags.is("--seed")) {
      seed = flags.seed_value();
    } else if (flags.is("--loss")) {
      loss = flags.double_value(0.0, 1.0);
    } else if (flags.is("--rounds")) {
      rounds = flags.int_value(1, 1000);
    } else if (flags.is("--responders")) {
      responders = flags.int_value(1, 8);
    } else {
      flags.unknown();
    }
  }

  if (!record_path.empty()) obs::FlightRecorder::set_enabled(true);

  // Office scenario with responders on a ring and a lossy fault plan: the
  // same shape bench_ext_fault_sweep uses, sized for a quick interactive
  // run that still produces every failure status at 30% loss.
  ranging::ScenarioConfig cfg;
  cfg.room = geom::Room::rectangular(12.0, 8.0, 10.0);
  cfg.initiator_position = {2.0, 4.0};
  cfg.seed = seed;
  cfg.ranging.num_slots = 4;
  cfg.ranging.slot_spacing_s = 150e-9;
  cfg.ranging.shape_registers = {0x93, 0xC8};
  cfg.detect_max_responses = static_cast<int>(2 * responders);
  cfg.slot_aware_selection = true;
  const double radius = 2.8;
  for (long i = 0; i < responders; ++i) {
    const double ang =
        2.0 * std::numbers::pi * static_cast<double>(i) /
            static_cast<double>(responders) + 0.4;
    cfg.responders.push_back(
        {static_cast<int>(i),
         {cfg.initiator_position.x + radius * std::cos(ang) + 1.5,
          cfg.initiator_position.y + 0.6 * radius * std::sin(ang)}});
  }
  cfg.fault.enabled = loss > 0.0;
  cfg.fault.preamble_miss_prob = loss;
  cfg.fault.preamble_snr_exponent = 1.0;
  cfg.fault.crc_error_prob = loss / 4.0;
  cfg.fault.late_tx_abort_prob = loss / 4.0;
  cfg.fault.dropout_prob = loss / 8.0;
  cfg.resilience.max_retries = 2;

  ranging::ConcurrentRangingScenario scenario(cfg);
  std::printf("session 0x%016llx: %ld rounds, %ld responders, %.0f%% loss\n",
              seed, rounds, responders, 100.0 * loss);

  for (long round = 0; round < rounds; ++round) {
    const ranging::RoundOutcome out = scenario.run_round();
    std::printf("\nround %ld (%d attempt%s): %s\n", round, out.attempts,
                out.attempts == 1 ? "" : "s",
                out.payload_decoded ? "decoded" : "failed");
    for (const auto& rep : out.responder_reports)
      std::printf("  responder %d: %s\n", rep.id,
                  ranging::to_string(rep.status));
  }

  if (!record_path.empty()) {
    const auto& recorder = obs::FlightRecorder::instance();
    if (!recorder.write_jsonl(record_path)) {
      std::fprintf(stderr, "cannot write %s\n", record_path.c_str());
      return 1;
    }
    std::printf("\n[%llu events recorded, %llu dropped; written to %s]\n",
                static_cast<unsigned long long>(recorder.recorded_events()),
                static_cast<unsigned long long>(recorder.dropped_events()),
                record_path.c_str());
    std::printf("explain a failed round with:\n"
                "  python3 tools/explain_session.py %s --list\n",
                record_path.c_str());
  }
  return 0;
}
